"""Tests for the parallel RL training subsystem.

Covers the four training layers — scenario curricula, the parallel rollout
collector, the checkpoint store and the trainer loop — plus the two
guarantees the subsystem is built on:

* **serial ≡ pool**: a training run produces bit-identical checkpoints on
  the serial and process backends, because every episode is a pure function
  of (policy parameters, episode seed);
* **checkpoint fidelity**: a reloaded policy makes bit-identical decisions
  on a fixed observation stream and resumes training bit-identically
  (optimiser state included), and the checkpointed best policy beats the
  untrained one on the held-out trace set.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.core.sensei_abr import SenseiPensieveABR, make_sensei_pensieve
from repro.engine.runner import BatchRunner
from repro.ml.nn import MLP, AdamOptimizer
from repro.ml.rl import ActorCriticAgent, ActorCriticConfig, EpisodeBuffer
from repro.network.bank import TraceBank
from repro.qoe.ground_truth import GroundTruthOracle
from repro.training import (
    CheckpointStore,
    CurriculumConfig,
    EpisodeSpec,
    PolicySnapshot,
    RolloutCollector,
    ScenarioCurriculum,
    Trainer,
    TrainerConfig,
    collect_shard,
    congestion_onset_trace,
    evaluate_policy,
)
from repro.faults.integrity import attach_checksum
from repro.training.checkpoint import CHECKPOINT_FORMAT_VERSION
from repro.training.collector import RolloutShard
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.video import SourceVideo


# ----------------------------------------------------------------- fixtures


@pytest.fixture(scope="module")
def tiny_videos():
    """Two short encoded videos (16 chunks each) for fast training."""
    encoder = SyntheticEncoder(seed=5)
    videos = []
    for index, genre in enumerate(("sports", "animation")):
        source = SourceVideo.synthesize(
            f"v{index}", genre, duration_s=64.0, chunk_duration_s=4.0,
            seed=3 + index,
        )
        videos.append(encoder.encode(source, DEFAULT_LADDER))
    return videos


@pytest.fixture(scope="module")
def bank_traces():
    return TraceBank(num_traces=4, duration_s=400.0, seed=11).traces()


@pytest.fixture(scope="module")
def training_oracle():
    return GroundTruthOracle()


@pytest.fixture(scope="module")
def curriculum(tiny_videos, bank_traces, training_oracle):
    weights = {
        video.source.video_id: training_oracle.normalized_sensitivity(
            video.source
        )
        for video in tiny_videos
    }
    return ScenarioCurriculum(
        tiny_videos,
        bank_traces,
        weights_by_video=weights,
        config=CurriculumConfig(trace_duration_s=400.0, seed=29),
    )


def fresh_policy() -> SenseiPensieveABR:
    return make_sensei_pensieve(seed=47)


# ------------------------------------------------------------------ seeding


class TestSeeding:
    def test_reseed_makes_episode_independent_of_history(self, curriculum):
        """A worker's episode must be reproducible from its spec seed alone,
        regardless of what the agent's rng consumed beforehand."""
        specs = curriculum.training_specs(3, round_index=0)
        fresh = fresh_policy()
        warmed = fresh_policy()
        # Burn exploration samples on one agent only.
        warmed.agent.reseed_exploration(12345)
        state = np.zeros(warmed.config.state_dim)
        for _ in range(50):
            warmed.agent.select_action(state)

        shard = lambda abr, spec: RolloutShard(
            snapshot=PolicySnapshot.of(abr), specs=(spec,)
        )
        for spec in specs:
            [a] = collect_shard(shard(fresh, spec))
            [b] = collect_shard(shard(warmed, spec))
            assert np.array_equal(a.actions, b.actions)
            assert np.array_equal(a.states, b.states)
            assert np.array_equal(a.rewards, b.rewards)

    def test_collect_same_spec_twice_is_identical(self, curriculum):
        spec = curriculum.training_specs(1, round_index=0)[0]
        collector = RolloutCollector()
        abr = fresh_policy()
        first = collector.collect(abr, [spec])[0]
        second = collector.collect(abr, [spec])[0]
        assert np.array_equal(first.actions, second.actions)
        assert np.array_equal(first.rewards, second.rewards)


# --------------------------------------------------------------- curriculum


class TestScenarioCurriculum:
    def test_specs_are_deterministic(self, tiny_videos, bank_traces, curriculum):
        twin = ScenarioCurriculum(
            tiny_videos,
            bank_traces,
            weights_by_video=curriculum.weights_by_video,
            config=curriculum.config,
        )
        for round_index in (0, 3):
            ours = curriculum.training_specs(9, round_index=round_index)
            theirs = twin.training_specs(9, round_index=round_index)
            assert [s.seed for s in ours] == [s.seed for s in theirs]
            assert [s.trace.name for s in ours] == [s.trace.name for s in theirs]
            assert [s.encoded.source.video_id for s in ours] == [
                s.encoded.source.video_id for s in theirs
            ]

    def test_default_mix_covers_all_regimes(self, curriculum):
        specs = curriculum.training_specs(16, round_index=0)
        regimes = {spec.regime for spec in specs}
        assert regimes == {"bank", "handover", "congestion", "cellular"}
        assert len(specs) == 16

    def test_rounds_draw_distinct_episode_seeds(self, curriculum):
        seeds_a = {s.seed for s in curriculum.training_specs(8, round_index=0)}
        seeds_b = {s.seed for s in curriculum.training_specs(8, round_index=1)}
        assert seeds_a.isdisjoint(seeds_b)

    def test_holdout_disjoint_from_training(self, curriculum):
        train_seeds = {
            spec.seed
            for round_index in range(5)
            for spec in curriculum.training_specs(8, round_index=round_index)
        }
        holdout = curriculum.holdout_specs(8)
        assert train_seeds.isdisjoint({spec.seed for spec in holdout})
        # Holdout is itself deterministic.
        again = curriculum.holdout_specs(8)
        assert [s.seed for s in holdout] == [s.seed for s in again]

    def test_single_regime_mix(self, tiny_videos, bank_traces):
        config = CurriculumConfig(
            regime_mix=(("cellular", 1.0),), trace_duration_s=300.0, seed=7
        )
        specs = ScenarioCurriculum(
            tiny_videos, bank_traces, config=config
        ).training_specs(5)
        assert all(spec.regime == "cellular" for spec in specs)
        assert all(spec.trace.name.startswith("cellular") for spec in specs)

    def test_congestion_onset_trace_collapses_tail(self, bank_traces):
        base = bank_traces[-1]
        collapsed = congestion_onset_trace(base, onset_fraction=0.5, ratio=0.25)
        timestamps = np.array(base.timestamps_s)
        onset_s = float(timestamps[-1]) * 0.5
        before = timestamps < onset_s
        assert np.allclose(
            collapsed.bandwidths_mbps[before], base.bandwidths_mbps[before]
        )
        tail_ratio = (
            collapsed.bandwidths_mbps[~before] / base.bandwidths_mbps[~before]
        )
        assert np.all(tail_ratio < 0.26)

    def test_rejects_unknown_regime(self):
        with pytest.raises(ValueError):
            CurriculumConfig(regime_mix=(("warp", 1.0),))


# ---------------------------------------------------------------- collector


class TestRolloutCollector:
    def test_shard_size_does_not_change_results(self, curriculum):
        specs = curriculum.training_specs(7, round_index=0)
        abr = fresh_policy()
        fine = RolloutCollector(shard_size=1).collect(abr, specs)
        coarse = RolloutCollector(shard_size=3).collect(abr, specs)
        assert len(fine) == len(coarse) == 7
        for a, b in zip(fine, coarse):
            assert a.seed == b.seed
            assert np.array_equal(a.actions, b.actions)
            assert np.array_equal(a.rewards, b.rewards)

    def test_merge_preserves_spec_order(self, curriculum):
        specs = curriculum.training_specs(6, round_index=2)
        rollouts = RolloutCollector(shard_size=2).collect(fresh_policy(), specs)
        assert [r.seed for r in rollouts] == [s.seed for s in specs]
        assert [r.regime for r in rollouts] == [s.regime for s in specs]

    @pytest.mark.slow
    def test_process_backend_matches_serial(self, curriculum):
        specs = curriculum.training_specs(6, round_index=1)
        abr = fresh_policy()
        serial = RolloutCollector(
            runner=BatchRunner(backend="serial"), shard_size=2
        ).collect(abr, specs)
        pooled = RolloutCollector(
            runner=BatchRunner(backend="process", max_workers=2), shard_size=2
        ).collect(abr, specs)
        assert len(serial) == len(pooled)
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.states, b.states)
            assert np.array_equal(a.actions, b.actions)
            assert np.array_equal(a.rewards, b.rewards)

    def test_lockstep_backend_matches_serial(self, curriculum):
        """The batched RL driver collects byte-identical experience: the
        whole round steps as one SoA shard, yet every (state, action,
        reward) array must equal the serial reseed-replay's exactly."""
        specs = curriculum.training_specs(6, round_index=1)
        abr = fresh_policy()
        serial = RolloutCollector(
            runner=BatchRunner(backend="serial"), shard_size=2
        ).collect(abr, specs)
        lockstep = RolloutCollector(
            runner=BatchRunner(backend="lockstep"), shard_size=2
        ).collect(abr, specs)
        assert len(serial) == len(lockstep) == 6
        for a, b in zip(serial, lockstep):
            assert a.states.tobytes() == b.states.tobytes()
            assert np.array_equal(a.actions, b.actions)
            assert a.rewards.tobytes() == b.rewards.tobytes()
            assert (a.seed, a.regime) == (b.seed, b.regime)


# --------------------------------------------------------------- checkpoint


class TestCheckpointStore:
    def _trained_policy(self, curriculum) -> SenseiPensieveABR:
        abr = fresh_policy()
        collector = RolloutCollector()
        for rollout in collector.collect(
            abr, curriculum.training_specs(4, round_index=0)
        ):
            abr.agent.train_on_episode(
                EpisodeBuffer.from_arrays(
                    rollout.states, rollout.actions, rollout.rewards
                )
            )
        abr.record_training(4)
        return abr

    def test_round_trip_bit_identical_decisions(self, curriculum, tmp_path):
        """Save/load reproduces greedy decisions and action distributions
        bit-for-bit on a fixed observation stream."""
        abr = self._trained_policy(curriculum)
        store = CheckpointStore(tmp_path)
        store.save(abr, "sensei", metrics={"mean_qoe": 0.5})
        loaded = store.load("sensei")

        assert isinstance(loaded, SenseiPensieveABR)
        assert loaded.config == abr.config
        assert loaded.trained_episodes == abr.trained_episodes
        # A fixed stream of observations: the states visited on a held-out
        # episode by the original policy.
        spec = curriculum.holdout_specs(1)[0]
        [rollout] = collect_shard(
            RolloutShard(snapshot=PolicySnapshot.of(abr), specs=(spec,))
        )
        for state in rollout.states:
            original_probs = abr.agent.action_probabilities(state)
            loaded_probs = loaded.agent.action_probabilities(state)
            assert np.array_equal(original_probs, loaded_probs)
            assert abr.agent.select_action(state, greedy=True) == (
                loaded.agent.select_action(state, greedy=True)
            )

    def test_round_trip_resumes_training_bit_identically(self, curriculum, tmp_path):
        """Optimiser state survives the round trip: one more update on the
        original and on the reloaded policy lands on identical parameters."""
        abr = self._trained_policy(curriculum)
        store = CheckpointStore(tmp_path)
        store.save(abr, "resume")
        loaded = store.load("resume")

        [rollout] = RolloutCollector().collect(
            abr, curriculum.training_specs(1, round_index=9)
        )
        episode = EpisodeBuffer.from_arrays(
            rollout.states, rollout.actions, rollout.rewards
        )
        twin = EpisodeBuffer.from_arrays(
            rollout.states, rollout.actions, rollout.rewards
        )
        abr.agent.train_on_episode(episode)
        loaded.agent.train_on_episode(twin)
        original = abr.agent.state_dict()
        resumed = loaded.agent.state_dict()
        assert set(original) == set(resumed)
        for key in original:
            assert np.array_equal(original[key], resumed[key]), key

    def test_save_index_and_latest(self, curriculum, tmp_path):
        store = CheckpointStore(tmp_path)
        abr = fresh_policy()
        first = store.save(abr, "a")
        second = store.save(abr, "b")
        assert (first.save_index, second.save_index) == (0, 1)
        assert store.names() == ["a", "b"]
        assert store.latest() == "b"
        assert store.describe("a").kind == "sensei-pensieve"

    def test_plain_pensieve_round_trip(self, tmp_path):
        abr = PensieveABR(config=PensieveConfig(seed=13))
        store = CheckpointStore(tmp_path)
        store.save(abr, "plain")
        loaded = store.load("plain")
        assert isinstance(loaded, PensieveABR)
        assert not isinstance(loaded, SenseiPensieveABR)
        assert loaded.config == abr.config

    def test_rejects_newer_format_version(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(fresh_policy(), "future")
        metadata_path = tmp_path / "future" / "metadata.json"
        metadata = json.loads(metadata_path.read_text())
        metadata["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        # Re-stamp the checksum: the tampered file must pass integrity
        # verification so the version gate itself is what rejects it.
        metadata_path.write_text(json.dumps(attach_checksum(metadata)))
        with pytest.raises(ValueError, match="format version"):
            store.load("future")

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no checkpoint"):
            CheckpointStore(tmp_path).load("ghost")

    def test_rejects_bad_names(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(ValueError):
            store.save(fresh_policy(), "nested/name")


# ----------------------------------------------------- state-dict primitives


class TestStateDicts:
    def test_mlp_state_dict_round_trip(self):
        source = MLP(4, (8,), 3, seed=1)
        target = MLP(4, (8,), 3, seed=2)
        target.load_state_dict(source.state_dict())
        x = np.linspace(-1.0, 1.0, 4)
        assert np.array_equal(source.predict(x), target.predict(x))

    def test_mlp_rejects_shape_mismatch(self):
        small = MLP(4, (8,), 3, seed=1)
        big = MLP(4, (16,), 3, seed=1)
        with pytest.raises(ValueError):
            big.load_state_dict(small.state_dict())

    def test_adam_state_dict_round_trip(self):
        def step(optimizer, parameters):
            gradients = {
                name: np.full_like(value, 0.1)
                for name, value in parameters.items()
            }
            optimizer.update(parameters, gradients)

        original = AdamOptimizer(learning_rate=1e-2)
        params_a = {"w": np.ones((2, 2))}
        step(original, params_a)

        clone = AdamOptimizer(learning_rate=999.0)  # overwritten by load
        clone.load_state_dict(original.state_dict())
        params_b = {"w": params_a["w"].copy()}
        step(original, params_a)
        step(clone, params_b)
        assert np.array_equal(params_a["w"], params_b["w"])

    def test_agent_state_dict_covers_optimizers(self):
        config = ActorCriticConfig(state_dim=4, num_actions=3, hidden_dims=(8,))
        agent = ActorCriticAgent(config)
        state = agent.state_dict()
        assert any(key.startswith("actor_opt/") for key in state)
        assert any(key.startswith("critic_opt/") for key in state)
        assert "entropy_weight" in state


# ------------------------------------------------------------------ trainer


@pytest.mark.training
class TestTrainer:
    def _config(self, **overrides) -> TrainerConfig:
        defaults = dict(
            rounds=4, episodes_per_round=6, eval_every=2, eval_episodes=4
        )
        defaults.update(overrides)
        return TrainerConfig(**defaults)

    def test_schedules_applied(self, curriculum, training_oracle):
        abr = fresh_policy()
        trainer = Trainer(
            abr, curriculum, oracle=training_oracle,
            config=self._config(
                actor_lr=1e-3, critic_lr=2e-3, lr_decay=0.5,
                entropy_weight=0.08, entropy_decay=0.5,
            ),
        )
        result = trainer.train()
        assert [stats.actor_lr for stats in result.history] == pytest.approx(
            [1e-3, 5e-4, 2.5e-4, 1.25e-4]
        )
        assert [
            stats.entropy_weight for stats in result.history
        ] == pytest.approx([0.08, 0.04, 0.02, 0.01])
        assert result.episodes_trained == 24
        assert abr.trained_episodes == 24

    def test_entropy_floor(self, curriculum, training_oracle):
        trainer = Trainer(
            fresh_policy(), curriculum, oracle=training_oracle,
            config=self._config(
                rounds=3, entropy_weight=0.02, entropy_decay=0.01,
                min_entropy_weight=0.005,
            ),
        )
        result = trainer.train()
        assert result.history[-1].entropy_weight == pytest.approx(0.005)

    def test_periodic_checkpointing_without_store_is_a_noop(
        self, curriculum, training_oracle
    ):
        trainer = Trainer(
            fresh_policy(), curriculum, oracle=training_oracle,
            config=self._config(rounds=2, checkpoint_every=1),
        )
        result = trainer.train()  # must not touch a (missing) store
        assert result.checkpoints == []

    def test_early_stopping(self, curriculum, training_oracle):
        trainer = Trainer(
            fresh_policy(), curriculum, oracle=training_oracle,
            config=self._config(
                rounds=12, episodes_per_round=8, eval_every=1,
                early_stop_patience=2,
            ),
        )
        result = trainer.train()
        assert result.stopped_early
        assert len(result.history) < 12
        assert result.best_round >= 0

    @pytest.mark.slow
    def test_serial_and_process_backends_produce_identical_checkpoints(
        self, curriculum, training_oracle, tmp_path
    ):
        """The acceptance guarantee: same seed, either backend, same
        checkpoint — compared key by key, array by array."""

        def run(backend_dir, runner):
            abr = fresh_policy()
            store = CheckpointStore(tmp_path / backend_dir)
            Trainer(
                abr, curriculum, runner=runner, store=store,
                checkpoint_name="sensei", oracle=training_oracle,
                config=self._config(rounds=3, episodes_per_round=6),
            ).train()
            return store

        serial_store = run("serial", BatchRunner(backend="serial"))
        pool_store = run(
            "process", BatchRunner(backend="process", max_workers=2)
        )
        assert serial_store.names() == pool_store.names()
        for name in serial_store.names():
            serial_state = serial_store.load(name).agent.state_dict()
            pool_state = pool_store.load(name).agent.state_dict()
            assert set(serial_state) == set(pool_state)
            for key in serial_state:
                assert np.array_equal(serial_state[key], pool_state[key]), (
                    name, key,
                )

    def test_trained_policy_beats_untrained_on_holdout(
        self, curriculum, training_oracle, tmp_path
    ):
        """The checkpointed best SENSEI-Pensieve policy must beat the
        untrained policy's mean QoE on the held-out trace set."""
        holdout = curriculum.holdout_specs(6)
        untrained_qoe = evaluate_policy(
            fresh_policy(), holdout, oracle=training_oracle
        )

        store = CheckpointStore(tmp_path)
        trainer = Trainer(
            fresh_policy(), curriculum, store=store, checkpoint_name="sensei",
            oracle=training_oracle,
            config=TrainerConfig(
                rounds=10, episodes_per_round=8, eval_every=1,
                eval_episodes=6,
            ),
        )
        result = trainer.train()
        assert "sensei-best" in store.names()
        best = store.load("sensei-best")
        best_qoe = evaluate_policy(best, holdout, oracle=training_oracle)
        assert best_qoe > untrained_qoe
        assert result.best_eval_qoe == pytest.approx(best_qoe)


# --------------------------------------------------------- grid integration


class TestGridIntegration:
    def test_checkpoints_round_trip_into_experiment_context(self, tmp_path):
        from repro.experiments.common import ExperimentContext, ExperimentScale

        store = CheckpointStore(tmp_path)
        store.save(PensieveABR(config=PensieveConfig(seed=13)), "pensieve")
        store.save(fresh_policy(), "sensei")

        context = ExperimentContext(scale=ExperimentScale.quick(), seed=7)
        context.load_trained_agents(
            store, pensieve="pensieve", sensei_pensieve="sensei"
        )
        # The installed policies are returned as-is: no ad hoc training run.
        pensieve = context.trained_pensieve()
        sensei = context.trained_sensei_pensieve()
        assert pensieve.config.seed == 13
        assert isinstance(sensei, SenseiPensieveABR)
        assert context.trained_pensieve() is pensieve

    def test_install_validates_kinds(self):
        from repro.experiments.common import ExperimentContext

        context = ExperimentContext()
        with pytest.raises(ValueError):
            context.install_trained_agents(pensieve=fresh_policy())
        with pytest.raises(ValueError):
            context.install_trained_agents(
                sensei_pensieve=PensieveABR(config=PensieveConfig(seed=1))
            )


# ----------------------------------------------------------------- pipeline


class TestTrainingPipeline:
    """End-to-end ``train_policies`` at micro scale — fast enough for
    tier-1, and the backend-identity check that matters most: the whole
    train → checkpoint → reload → grid pipeline must come out identical
    whether rollouts are collected serially or through the lockstep
    batched RL driver."""

    MICRO = dict(rounds=1, episodes_per_round=2, eval_every=1, eval_episodes=1)

    def _run(self, backend, tmp_path):
        from repro.training.pipeline import train_policies

        return train_policies(
            seed=11,
            checkpoint_root=tmp_path / backend,
            runner=BatchRunner(backend=backend),
            config=TrainerConfig(**self.MICRO),
            verbose=False,
        )

    def test_lockstep_collection_matches_serial_end_to_end(self, tmp_path):
        serial = self._run("serial", tmp_path)
        lockstep = self._run("lockstep", tmp_path)
        assert serial["backend"] == "serial"
        assert lockstep["backend"] == "lockstep"
        # Training trajectories, evaluations and the final checkpoint-backed
        # grid are all floats: exact equality, not approx — byte-identical
        # experience must yield byte-identical policies.
        assert serial["policies"] == lockstep["policies"]
        assert serial["grid_mean_qoe"] == lockstep["grid_mean_qoe"]
        for name in ("pensieve-best", "sensei-pensieve-best"):
            left = CheckpointStore(tmp_path / "serial").load(name)
            right = CheckpointStore(tmp_path / "lockstep").load(name)
            left_state = left.agent.state_dict()
            right_state = right.agent.state_dict()
            assert sorted(left_state) == sorted(right_state)
            for key, value in left_state.items():
                assert value.tobytes() == right_state[key].tobytes(), key

    def test_report_schema(self, tmp_path):
        report = self._run("lockstep", tmp_path)
        for key in ("scale", "seed", "backend", "checkpoint_root",
                    "policies", "grid_mean_qoe", "fault_log"):
            assert key in report, key
        for name in ("pensieve", "sensei-pensieve"):
            policy = report["policies"][name]
            assert policy["checkpoints"] == [f"{name}-best", f"{name}-final"]
            assert policy["evaluations"]
        assert set(report["grid_mean_qoe"]) >= {"Pensieve", "SENSEI-Pensieve"}
