"""Shared fixtures: a small video, traces and an oracle reused across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network.trace import ThroughputTrace
from repro.qoe.ground_truth import GroundTruthOracle
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.library import VideoLibrary
from repro.video.rendering import render_pristine
from repro.video.video import SourceVideo


@pytest.fixture(scope="session")
def library() -> VideoLibrary:
    """The Table-1 video catalogue (session-cached: content is deterministic)."""
    return VideoLibrary(seed=7)


@pytest.fixture(scope="session")
def oracle() -> GroundTruthOracle:
    """Ground-truth oracle with default parameters."""
    return GroundTruthOracle()


@pytest.fixture(scope="session")
def small_video():
    """A short synthetic sports video (12 chunks) for fast tests."""
    return SourceVideo.synthesize(
        "test-sports", "sports", duration_s=48.0, chunk_duration_s=4.0, seed=3
    )


@pytest.fixture(scope="session")
def small_encoded(small_video):
    """The small video encoded on the default ladder."""
    return SyntheticEncoder(seed=5).encode(small_video, DEFAULT_LADDER)


@pytest.fixture(scope="session")
def pristine(small_encoded):
    """Pristine rendering of the small video."""
    return render_pristine(small_encoded)


@pytest.fixture(scope="session")
def constant_trace() -> ThroughputTrace:
    """A 2 Mbps constant trace."""
    return ThroughputTrace.constant(2.0, duration_s=600.0, name="const-2mbps")


@pytest.fixture(scope="session")
def slow_trace() -> ThroughputTrace:
    """A 0.5 Mbps constant trace (forces low bitrates / stalls)."""
    return ThroughputTrace.constant(0.5, duration_s=600.0, name="const-0.5mbps")
