"""Tests for SENSEI's core: weights, reweighted QoE, scheduler, profiler, ABR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.profiler import SenseiProfiler
from repro.core.qoe_model import SenseiQoEModel
from repro.core.scheduler import SchedulerConfig, TwoStepScheduler
from repro.core.sensei_abr import SenseiFuguABR, SenseiPensieveABR, make_sensei_pensieve
from repro.core.weights import SensitivityProfile, infer_weights
from repro.network.trace import ThroughputTrace
from repro.player.simulator import simulate_session
from repro.qoe.ksqi import KSQIModel
from repro.utils.stats import spearman_correlation
from repro.video.rendering import (
    QualityIncident,
    inject_incident,
    make_video_series,
    render_pristine,
)


class TestSensitivityProfile:
    def test_basic_properties(self):
        profile = SensitivityProfile("v", np.array([0.5, 1.0, 1.5]))
        assert profile.num_chunks == 3
        assert profile.weight_of(2) == 1.5

    def test_rejects_nonpositive_weights(self):
        with pytest.raises(ValueError):
            SensitivityProfile("v", np.array([1.0, 0.0]))

    def test_high_low_chunk_selection(self):
        profile = SensitivityProfile("v", np.array([0.5, 1.0, 2.0, 1.0]))
        assert list(profile.high_sensitivity_chunks(threshold=1.3)) == [2]
        assert list(profile.low_sensitivity_chunks(threshold=0.7)) == [0]

    def test_normalized_mean_is_one(self):
        profile = SensitivityProfile("v", np.array([2.0, 4.0]))
        assert np.mean(profile.normalized().weights) == pytest.approx(1.0)

    def test_uniform_profile(self):
        profile = SensitivityProfile.uniform("v", 5)
        assert np.allclose(profile.weights, 1.0)

    def test_serialization_roundtrip(self, tmp_path):
        profile = SensitivityProfile("v", np.array([0.7, 1.3]), num_ratings=12,
                                     cost_usd=3.5)
        path = tmp_path / "profile.json"
        profile.save(path)
        loaded = SensitivityProfile.load(path)
        assert loaded.video_id == "v"
        assert np.allclose(loaded.weights, profile.weights)
        assert loaded.cost_usd == 3.5


class TestWeightInference:
    def _series_with_mos(self, oracle, encoded):
        pristine = render_pristine(encoded)
        series = [pristine] + make_video_series(
            encoded, QualityIncident.rebuffering(0, 1.0)
        )
        mos = [1.0 + 4.0 * oracle.true_qoe(r) for r in series]
        return series, mos

    def test_weights_positive_and_normalised(self, oracle, small_encoded):
        series, mos = self._series_with_mos(oracle, small_encoded)
        profile = infer_weights(series, mos, base_model=KSQIModel())
        assert profile.num_chunks == small_encoded.num_chunks
        assert np.all(profile.weights > 0)
        assert np.mean(profile.weights) == pytest.approx(1.0)

    def test_weights_recover_sensitivity_ranking(self, oracle, small_encoded):
        series, mos = self._series_with_mos(oracle, small_encoded)
        profile = infer_weights(series, mos, base_model=KSQIModel())
        truth = oracle.normalized_sensitivity(small_encoded.source)
        assert spearman_correlation(profile.weights, truth) > 0.6

    def test_noisier_mos_still_positive(self, oracle, small_encoded):
        series, mos = self._series_with_mos(oracle, small_encoded)
        rng = np.random.default_rng(0)
        noisy = [m + rng.normal(0, 0.2) for m in mos]
        profile = infer_weights(series, noisy, base_model=KSQIModel())
        assert np.all(profile.weights > 0)

    def test_uniform_mos_gives_near_uniform_weights(self, small_encoded):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 1.0))
        mos = [3.0] * len(series)
        profile = infer_weights(series, mos, base_model=KSQIModel())
        assert float(np.std(profile.weights)) < 0.25

    def test_rejects_mismatched_inputs(self, small_encoded):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 1.0))
        with pytest.raises(ValueError):
            infer_weights(series, [3.0], base_model=KSQIModel())


class TestSenseiQoEModel:
    def test_unprofiled_video_falls_back_to_base(self, pristine):
        model = SenseiQoEModel()
        assert model.score(pristine) == pytest.approx(KSQIModel().score(pristine))

    def test_profile_changes_prediction(self, oracle, small_encoded, pristine):
        model = SenseiQoEModel()
        weights = oracle.normalized_sensitivity(small_encoded.source)
        model.add_profile(SensitivityProfile(small_encoded.source.video_id, weights))
        most = int(np.argmax(weights))
        least = int(np.argmin(weights))
        at_most = inject_incident(pristine, QualityIncident.rebuffering(most, 2.0))
        at_least = inject_incident(pristine, QualityIncident.rebuffering(least, 2.0))
        assert model.score(at_most) < model.score(at_least)
        # The weight-unaware base model cannot tell the two apart.
        base = KSQIModel()
        assert base.score(at_most) == pytest.approx(base.score(at_least), abs=1e-6)

    def test_has_profile_and_lookup(self, small_encoded):
        model = SenseiQoEModel()
        assert not model.has_profile(small_encoded.source.video_id)
        model.add_profile(
            SensitivityProfile.uniform(small_encoded.source.video_id,
                                       small_encoded.num_chunks)
        )
        assert model.has_profile(small_encoded.source.video_id)
        assert model.profile_for(small_encoded.source.video_id) is not None

    def test_mismatched_profile_length_ignored(self, small_encoded, pristine):
        model = SenseiQoEModel()
        model.add_profile(
            SensitivityProfile(small_encoded.source.video_id, np.array([1.0, 2.0]))
        )
        assert np.allclose(model.weights_for(pristine), 1.0)

    def test_fit_trains_base_model(self, oracle, small_encoded, pristine):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 2.0))
        renderings = [pristine] + series
        mos = [1 + 4 * oracle.true_qoe(r) for r in renderings]
        model = SenseiQoEModel()
        model.fit(renderings, mos)
        assert model.base_model.coefficients.rebuffer_weight > 0


class TestScheduler:
    def test_step1_one_rendering_per_chunk_plus_reference(self, small_encoded):
        scheduler = TwoStepScheduler()
        schedule = scheduler.step1_schedule(small_encoded)
        assert len(schedule.renderings) == small_encoded.num_chunks + 1
        assert schedule.step == 1

    def test_step1_probe_is_one_second_stall(self, small_encoded):
        schedule = TwoStepScheduler().step1_schedule(small_encoded)
        stalled = [r for r in schedule.renderings if r.total_stall_s() > 0]
        assert all(r.total_stall_s() == pytest.approx(1.0) for r in stalled)

    def test_select_chunks_to_reprobe_threshold(self):
        scheduler = TwoStepScheduler(SchedulerConfig(deviation_threshold=0.25))
        weights = np.array([1.0, 1.0, 1.4, 0.6, 1.05])
        selected = scheduler.select_chunks_to_reprobe(weights)
        assert set(selected) == {2, 3}

    def test_step2_only_probes_selected_chunks(self, small_encoded):
        config = SchedulerConfig(deviation_threshold=0.3)
        scheduler = TwoStepScheduler(config)
        weights = np.ones(small_encoded.num_chunks)
        weights[4] = 2.0
        schedule = scheduler.step2_schedule(small_encoded, weights)
        expected = config.step2_num_bitrate_levels + config.step2_num_rebuffer_lengths
        assert len(schedule.renderings) == expected
        assert schedule.step == 2

    def test_step2_empty_when_no_deviation(self, small_encoded):
        scheduler = TwoStepScheduler(SchedulerConfig(deviation_threshold=0.5))
        schedule = scheduler.step2_schedule(
            small_encoded, np.ones(small_encoded.num_chunks)
        )
        assert len(schedule.renderings) == 0

    def test_exhaustive_schedule_is_larger_than_two_step(self, small_encoded):
        scheduler = TwoStepScheduler()
        step1 = scheduler.step1_schedule(small_encoded)
        exhaustive = scheduler.exhaustive_schedule(small_encoded)
        assert exhaustive.total_video_seconds() > step1.total_video_seconds()

    def test_total_video_seconds_counts_ratings(self, small_encoded):
        schedule = TwoStepScheduler(
            SchedulerConfig(step1_ratings=3)
        ).step1_schedule(small_encoded)
        single = schedule.total_video_seconds() / 3
        assert single > 0


class TestProfiler:
    @pytest.fixture(scope="class")
    def profiling_result(self, oracle, small_encoded):
        profiler = SenseiProfiler(
            oracle=oracle,
            scheduler_config=SchedulerConfig(step1_ratings=6, step2_ratings=3),
            campaign_seed=19,
        )
        return profiler.profile_video(small_encoded)

    def test_profile_has_weight_per_chunk(self, profiling_result, small_encoded):
        assert profiling_result.profile.num_chunks == small_encoded.num_chunks

    def test_weights_correlate_with_truth(self, profiling_result, oracle, small_encoded):
        truth = oracle.normalized_sensitivity(small_encoded.source)
        assert spearman_correlation(profiling_result.weights, truth) > 0.4

    def test_cost_is_positive_and_accounted(self, profiling_result):
        assert profiling_result.total_cost_usd > 0
        assert profiling_result.cost_per_source_minute_usd > 0

    def test_two_step_cheaper_than_exhaustive(self, oracle, small_encoded):
        pruned = SenseiProfiler(
            oracle=oracle,
            scheduler_config=SchedulerConfig(step1_ratings=4, step2_ratings=2),
            campaign_seed=23,
            use_two_step=True,
        ).profile_video(small_encoded)
        exhaustive = SenseiProfiler(
            oracle=oracle,
            campaign_seed=23,
            use_two_step=False,
        ).profile_video(small_encoded)
        assert pruned.total_cost_usd < exhaustive.total_cost_usd

    def test_build_qoe_model_contains_profiles(self, oracle, small_encoded):
        profiler = SenseiProfiler(
            oracle=oracle,
            scheduler_config=SchedulerConfig(step1_ratings=4, step2_ratings=2),
            campaign_seed=29,
        )
        results = profiler.profile_videos([small_encoded])
        model = profiler.build_qoe_model(results)
        assert model.has_profile(small_encoded.source.video_id)


class TestSenseiABR:
    def test_sensei_fugu_streams(self, small_encoded, constant_trace, oracle):
        weights = oracle.normalized_sensitivity(small_encoded.source)
        result = simulate_session(
            SenseiFuguABR(), small_encoded, constant_trace, chunk_weights=weights
        )
        assert result.rendered.num_chunks == small_encoded.num_chunks

    def test_sensei_fugu_no_gratuitous_stalls_on_fast_network(
        self, small_encoded, oracle
    ):
        trace = ThroughputTrace.constant(10.0, duration_s=600.0)
        weights = oracle.normalized_sensitivity(small_encoded.source)
        result = simulate_session(
            SenseiFuguABR(), small_encoded, trace, chunk_weights=weights
        )
        assert result.timeline.proactive_stall_count() == 0
        assert result.rendered.total_stall_s() == 0.0

    def test_sensei_fugu_proactive_budget_respected(self, small_encoded, oracle):
        trace = ThroughputTrace.constant(0.6, duration_s=600.0)
        weights = oracle.normalized_sensitivity(small_encoded.source)
        abr = SenseiFuguABR(max_total_proactive_stall_s=2.0)
        result = simulate_session(
            abr, small_encoded, trace, chunk_weights=weights
        )
        proactive = sum(
            s.duration_s for s in result.timeline.stalls if s.cause == "proactive"
        )
        assert proactive <= 2.0 + 1e-6

    def test_sensei_fugu_at_least_as_good_as_fugu_on_average(
        self, library, oracle
    ):
        """On a small video/trace mix, SENSEI-Fugu should not lose to Fugu."""
        from repro.abr.fugu import FuguABR
        from repro.network.bank import TraceBank
        from repro.core.profiler import SenseiProfiler

        video_ids = ["soccer1", "lava"]
        bank = TraceBank(num_traces=3, duration_s=600.0, seed=31)
        profiler = SenseiProfiler(
            oracle=oracle,
            scheduler_config=SchedulerConfig(step1_ratings=6, step2_ratings=3),
            campaign_seed=31,
        )
        sensei_scores, fugu_scores = [], []
        for video_id in video_ids:
            encoded = library.encoded(video_id)
            weights = profiler.profile_video(encoded).profile.weights
            for trace in bank.traces():
                sensei_scores.append(oracle.true_qoe(simulate_session(
                    SenseiFuguABR(), encoded, trace, chunk_weights=weights
                ).rendered))
                fugu_scores.append(oracle.true_qoe(simulate_session(
                    FuguABR(), encoded, trace
                ).rendered))
        assert np.mean(sensei_scores) >= np.mean(fugu_scores) - 0.03

    def test_sensei_pensieve_configuration(self):
        abr = make_sensei_pensieve()
        assert abr.config.weight_horizon == 5
        assert abr.config.num_actions == 7
        assert abr.name == "SENSEI-Pensieve"

    def test_sensei_pensieve_requires_weights_in_state(self):
        from repro.abr.pensieve import PensieveConfig
        with pytest.raises(ValueError):
            SenseiPensieveABR(config=PensieveConfig(weight_horizon=0))

    def test_sensei_pensieve_streams(self, small_encoded, constant_trace, oracle):
        weights = oracle.normalized_sensitivity(small_encoded.source)
        result = simulate_session(
            make_sensei_pensieve(), small_encoded, constant_trace,
            chunk_weights=weights,
        )
        assert result.rendered.num_chunks == small_encoded.num_chunks
