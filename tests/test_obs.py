"""The telemetry subsystem: registry semantics, tracing, sinks, and the
engine integration (worker snapshot merging, backend-equivalent totals,
fault-log publishing, cache metrics, the ``profile`` CLI).

Timing-valued fields (span seconds, histogram sums over wall clock) are
never compared across runs — only deterministic metrics are: counts of
completed orders and the *simulated* session-duration histogram, which is
bit-identical across backends by the engine's equivalence contract.
"""

from __future__ import annotations

import json
from unittest import mock

import pytest

from repro.abr.bba import BufferBasedABR
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.planner import clear_plan_cache
from repro.engine.runner import BatchRunner, orders_for_grid
from repro.faults.log import FaultLog
from repro.network.bank import TraceBank
from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    diff_snapshots,
    merge_snapshots,
    phase_table,
    register_collector,
    run_events,
    set_enabled,
    to_prometheus,
    trace_span,
    use_registry,
    write_events_jsonl,
    write_prometheus,
)
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.video import SourceVideo


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Restore the tracer flag and the active registry around every test,
    so a failing test can never leak telemetry state into the suite."""
    previous_enabled = trace_mod.TRACE.enabled
    previous_active = metrics_mod._ACTIVE
    yield
    trace_mod.TRACE.enabled = previous_enabled
    metrics_mod._ACTIVE = previous_active


def _encode(video_id: str, genre: str, duration_s: float, seed: int):
    source = SourceVideo.synthesize(
        video_id, genre, duration_s=duration_s, chunk_duration_s=4.0, seed=seed
    )
    return SyntheticEncoder(seed=seed + 10).encode(source, DEFAULT_LADDER)


@pytest.fixture(scope="module")
def obs_orders():
    """A small deterministic grid: 2 ABRs x 2 videos x 2 traces."""
    videos = [_encode("obs-a", "sports", 48.0, 31), _encode("obs-b", "nature", 80.0, 32)]
    traces = TraceBank(num_traces=2, duration_s=300.0, seed=33).traces()
    keyed = orders_for_grid(
        [ModelPredictiveABR(), BufferBasedABR()], videos, traces
    )
    return [order for _, order in keyed]


def _run_with_telemetry(runner: BatchRunner, orders):
    registry = MetricsRegistry()
    previous = set_enabled(True)
    try:
        with use_registry(registry):
            results = runner.run_orders(orders)
    finally:
        set_enabled(previous)
    return results, registry.snapshot()


# ------------------------------------------------------------------ registry

class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(2.5)
        assert registry.snapshot()["counters"]["x"] == 3.5

    def test_gauge_sets(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(7)
        registry.gauge("g").set(3)
        assert registry.snapshot()["gauges"]["g"] == 3.0

    def test_histogram_buckets_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 10.0):
            hist.observe(value)
        payload = registry.snapshot()["histograms"]["h"]
        assert payload["buckets"] == [1.0, 10.0]
        # <=1: {0.5}; <=10: {5.0, 10.0}; +inf: {50.0}
        assert payload["counts"] == [1, 2, 1]
        assert payload["count"] == 4
        assert payload["sum"] == pytest.approx(65.5)

    def test_histogram_per_metric_buckets(self):
        """Each histogram keeps its own bounds; re-requesting with the
        *same* explicit bounds (or none) is fine, different bounds raise."""
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.001, 0.01))
        registry.histogram("size", buckets=(1.0, 8.0, 64.0))
        assert registry.histogram("lat").buckets == (0.001, 0.01)
        assert registry.histogram("lat", buckets=(0.001, 0.01)).buckets == (
            0.001, 0.01,
        )
        with pytest.raises(ValueError, match="bucket mismatch"):
            registry.histogram("lat", buckets=(0.001, 0.02))

    def test_micro_latency_buckets_resolve_sub_millisecond(self):
        from repro.obs import DEFAULT_MICRO_LATENCY_BUCKETS_S

        bounds = DEFAULT_MICRO_LATENCY_BUCKETS_S
        assert list(bounds) == sorted(set(bounds))
        # µs–ms range: several bounds under 100 µs so a service whose p50
        # is tens of microseconds lands in resolvable buckets.
        assert sum(1 for b in bounds if b < 1e-4) >= 4
        registry = MetricsRegistry()
        hist = registry.histogram("svc", buckets=bounds)
        hist.observe(3e-5)
        hist.observe(0.3)
        payload = registry.snapshot()["histograms"]["svc"]
        assert payload["counts"][0:4].count(1) == 1  # 30 µs resolved
        assert payload["count"] == 2

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", buckets=(2.0, 1.0))

    def test_record_span_accumulates_count_total_max(self):
        registry = MetricsRegistry()
        registry.record_span("s", 0.25)
        registry.record_span("s", 0.75)
        registry.record_span("s", 0.5)
        span = registry.snapshot()["spans"]["s"]
        assert span["count"] == 3
        assert span["total_s"] == pytest.approx(1.5)
        assert span["max_s"] == pytest.approx(0.75)

    def test_clear_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.record_span("s", 1.0)
        registry.clear()
        snapshot = registry.snapshot()
        assert not snapshot["counters"]
        assert not snapshot["spans"]

    def test_merge_snapshot_adds_counters_histograms_spans(self):
        source = MetricsRegistry()
        source.counter("c").inc(2)
        source.histogram("h", buckets=(1.0,)).observe(0.5)
        source.record_span("s", 0.25)
        source.gauge("g").set(9)
        target = MetricsRegistry()
        target.counter("c").inc(1)
        target.histogram("h", buckets=(1.0,)).observe(3.0)
        target.record_span("s", 0.75)
        target.merge_snapshot(source.snapshot())
        merged = target.snapshot()
        assert merged["counters"]["c"] == 3.0
        assert merged["histograms"]["h"]["counts"] == [1, 1]
        assert merged["spans"]["s"] == {
            "count": 2, "total_s": 1.0, "max_s": 0.75,
        }
        assert merged["gauges"]["g"] == 9.0

    def test_merge_rejects_bucket_mismatch(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        target = MetricsRegistry()
        target.histogram("h", buckets=(1.0, 5.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket mismatch"):
            target.merge_snapshot(source.snapshot())

    def test_merge_snapshots_function(self):
        a = MetricsRegistry()
        a.counter("c").inc(1)
        b = MetricsRegistry()
        b.counter("c").inc(2)
        assert merge_snapshots(a.snapshot(), b.snapshot())["counters"]["c"] == 3.0

    def test_diff_snapshots_window(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        registry.record_span("s", 1.0)
        before = registry.snapshot()
        registry.counter("c").inc(2)
        registry.histogram("h").observe(4.0)
        registry.record_span("s", 0.5)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["counters"] == {"c": 2.0}
        assert delta["histograms"]["h"]["counts"] == [0, 1]
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["spans"]["s"]["count"] == 1
        assert delta["spans"]["s"]["total_s"] == pytest.approx(0.5)

    def test_use_registry_scopes_and_restores_on_error(self):
        scoped = MetricsRegistry()
        default = metrics_mod.get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(scoped):
                assert metrics_mod.get_registry() is scoped
                raise RuntimeError("boom")
        assert metrics_mod.get_registry() is default

    def test_collectors_run_at_snapshot_time_and_register_once(self):
        calls = []

        def collector(registry):
            calls.append(registry)
            registry.gauge("collected").set(1)

        register_collector(collector)
        register_collector(collector)  # idempotent
        try:
            registry = MetricsRegistry()
            snapshot = registry.snapshot()
            assert snapshot["gauges"]["collected"] == 1.0
            assert calls == [registry]
        finally:
            metrics_mod._COLLECTORS.remove(collector)


# ------------------------------------------------------------------- tracing

class TestTracing:
    def test_set_enabled_returns_previous(self):
        set_enabled(False)
        assert set_enabled(True) is False
        assert set_enabled(False) is True

    def test_trace_span_noop_when_disabled(self):
        set_enabled(False)
        registry = MetricsRegistry()
        with use_registry(registry):
            with trace_span("quiet"):
                pass
        assert registry.snapshot()["spans"] == {}

    def test_trace_span_records_when_enabled(self):
        set_enabled(True)
        registry = MetricsRegistry()
        with use_registry(registry):
            with trace_span("loud"):
                pass
        span = registry.snapshot()["spans"]["loud"]
        assert span["count"] == 1
        assert span["total_s"] >= 0.0

    def test_trace_span_records_on_exception(self):
        set_enabled(True)
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(ValueError):
                with trace_span("failing"):
                    raise ValueError("inside")
        assert registry.snapshot()["spans"]["failing"]["count"] == 1


# --------------------------------------------------------------------- sinks

def _sink_snapshot():
    registry = MetricsRegistry()
    registry.counter("orders").inc(4)
    registry.gauge("cache.size").set(2)
    registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    registry.histogram("lat").observe(5.0)
    registry.record_span("engine.dispatch", 2.0)
    registry.record_span("planner.kernel", 1.2)
    return registry.snapshot()


class TestSinks:
    def test_run_events_structure(self):
        events = run_events(
            _sink_snapshot(), run_id="r1",
            started_at="2026-01-01T00:00:00+00:00", duration_s=2.5,
        )
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run_started"
        assert kinds[-1] == "run_finished"
        assert kinds.count("phase") == 2
        # One metric event per counter/gauge; registered collectors (the
        # planner's plan_cache gauges) may contribute more.
        metric_names = {
            e["name"] for e in events if e["event"] == "metric"
        }
        assert {"orders", "cache.size"} <= metric_names
        phase = next(
            e for e in events
            if e["event"] == "phase" and e["name"] == "planner.kernel"
        )
        assert phase["share_of_dispatch"] == pytest.approx(0.6)

    def test_events_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        events = run_events(_sink_snapshot(), run_id="r1")
        write_events_jsonl(path, events)
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(parsed) == len(events)
        snapshot_event = next(
            e for e in parsed if e["event"] == "metrics_snapshot"
        )
        assert snapshot_event["snapshot"]["counters"]["orders"] == 4.0

    def test_prometheus_format(self, tmp_path):
        text = to_prometheus(_sink_snapshot())
        assert "# TYPE repro_orders_total counter" in text
        assert "repro_orders_total 4" in text
        assert "repro_cache_size 2" in text
        # Cumulative bucket export: 1 at <=0.1, still 1 at <=1.0, 2 at +Inf.
        assert 'repro_lat_bucket{le="0.1"} 1' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert 'repro_span_seconds_total{span="engine.dispatch"} 2.0' in text
        path = write_prometheus(tmp_path / "metrics.prom", _sink_snapshot())
        assert path.read_text() == text

    def test_prometheus_help_lines(self):
        """Every exported family carries a # HELP line scrapers can parse."""
        text = to_prometheus(_sink_snapshot())
        lines = text.splitlines()
        for metric in ("repro_orders_total", "repro_cache_size", "repro_lat",
                       "repro_span_seconds_total", "repro_span_count",
                       "repro_span_max_seconds"):
            help_lines = [l for l in lines if l.startswith(f"# HELP {metric} ")]
            assert len(help_lines) == 1, metric
            # HELP precedes TYPE for the same family (exposition order).
            assert lines.index(help_lines[0]) < lines.index(next(
                l for l in lines if l.startswith(f"# TYPE {metric} ")
            ))

    def test_prometheus_escapes_names_and_label_values(self):
        registry = MetricsRegistry()
        registry.counter("weird metric!name").inc()
        registry.record_span('spans\\with"quotes\nand newlines', 1.0)
        text = to_prometheus(registry.snapshot())
        # Invalid metric-name characters are sanitised to underscores.
        assert "repro_weird_metric_name_total 1" in text
        # Label values escape backslash, quote and newline.
        assert (
            'span="spans\\\\with\\"quotes\\nand newlines"' in text
        )
        assert "\nand newlines" not in text.replace("\\nand newlines", "")

    def test_phase_table_contents_and_empty_message(self):
        table = phase_table(_sink_snapshot())
        lines = table.splitlines()
        assert "phase" in lines[0]
        # Sorted by total seconds descending: dispatch first.
        assert "engine.dispatch" in lines[1]
        assert "100.0%" in lines[1]
        assert "60.0%" in lines[2]
        assert "telemetry off?" in phase_table({"spans": {}})


# -------------------------------------------------------- engine integration

class TestEngineTelemetry:
    def test_lockstep_run_records_phases_and_orders(self, obs_orders):
        results, snapshot = _run_with_telemetry(
            BatchRunner(backend="lockstep"), obs_orders
        )
        assert snapshot["counters"]["engine.orders_completed"] == len(results)
        spans = snapshot["spans"]
        for name in ("engine.dispatch", "engine.lockstep.shard",
                     "planner.kernel", "player.step"):
            assert spans[name]["count"] >= 1, name
        # Single-process backend: disjoint leaves fit inside the root.
        assert (
            spans["planner.kernel"]["total_s"] + spans["player.step"]["total_s"]
            <= spans["engine.dispatch"]["total_s"]
        )
        hist = snapshot["histograms"]["engine.session_duration_s"]
        assert hist["count"] == len(results)

    def test_map_ordered_records_dispatch_span(self):
        set_enabled(True)
        registry = MetricsRegistry()
        with use_registry(registry):
            out = BatchRunner(backend="serial").map_ordered(
                lambda x: x * 2, [1, 2, 3]
            )
        assert out == [2, 4, 6]
        spans = registry.snapshot()["spans"]
        assert spans["engine.map"]["count"] == 1
        assert spans["engine.map"]["total_s"] >= 0.0

    def test_disabled_telemetry_records_nothing(self, obs_orders):
        set_enabled(False)
        registry = MetricsRegistry()
        with use_registry(registry):
            BatchRunner(backend="lockstep").run_orders(obs_orders)
        snapshot = registry.snapshot()
        assert snapshot["spans"] == {}
        assert "engine.orders_completed" not in snapshot["counters"]

    def test_serial_and_lockstep_deterministic_metrics_agree(self, obs_orders):
        _, serial = _run_with_telemetry(
            BatchRunner(backend="serial"), obs_orders
        )
        _, lockstep = _run_with_telemetry(
            BatchRunner(backend="lockstep"), obs_orders
        )
        assert (
            serial["counters"]["engine.orders_completed"]
            == lockstep["counters"]["engine.orders_completed"]
        )
        # Simulated seconds, not wall clock: bit-identical across backends.
        assert (
            serial["histograms"]["engine.session_duration_s"]
            == lockstep["histograms"]["engine.session_duration_s"]
        )

    @pytest.mark.slow
    def test_process_backend_merges_worker_snapshots(self, obs_orders):
        """Per-worker registries travel back over the shard boundary and the
        parent's deterministic totals match the serial run's exactly."""
        _, serial = _run_with_telemetry(
            BatchRunner(backend="serial"), obs_orders
        )
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=4):
            runner = BatchRunner(backend="process", max_workers=2)
            try:
                results, process = _run_with_telemetry(runner, obs_orders)
            finally:
                runner.close()
        assert len(results) == len(obs_orders)
        assert (
            process["counters"]["engine.orders_completed"]
            == serial["counters"]["engine.orders_completed"]
        )
        # Bucket counts are exact (each observation is bit-identical across
        # backends); the float *sum* is accumulated shard-by-shard in the
        # workers and merged in completion order, so its association —
        # hence its last bits — can differ from the serial left-to-right sum.
        serial_hist = serial["histograms"]["engine.session_duration_s"]
        process_hist = process["histograms"]["engine.session_duration_s"]
        assert process_hist["buckets"] == serial_hist["buckets"]
        assert process_hist["counts"] == serial_hist["counts"]
        assert process_hist["count"] == serial_hist["count"]
        assert process_hist["sum"] == pytest.approx(
            serial_hist["sum"], rel=1e-9
        )
        # The workers' span snapshots merged in too (names, not timings).
        assert process["spans"]["planner.kernel"]["count"] >= 1
        assert process["spans"]["player.step"]["count"] >= 1


# --------------------------------------------------------- fault-log metrics

class TestFaultLogMetrics:
    def test_publish_counters_and_histogram(self):
        log = FaultLog()
        log.retries = 3
        log.worker_crashes = 1
        log.wall_clock_lost_s = 1.5
        registry = MetricsRegistry()
        log.publish_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["faults.retries"] == 3.0
        assert snapshot["counters"]["faults.worker_crashes"] == 1.0
        hist = snapshot["histograms"]["faults.wall_clock_lost_s"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(1.5)

    def test_publish_is_incremental(self):
        """Registry totals track log totals across repeated publishes —
        the metrics/FaultLog consistency contract."""
        log = FaultLog()
        registry = MetricsRegistry()
        log.retries = 2
        log.publish_metrics(registry)
        log.retries = 5
        log.timeouts = 1
        log.publish_metrics(registry)
        log.publish_metrics(registry)  # no new faults: no double count
        snapshot = registry.snapshot()
        assert snapshot["counters"]["faults.retries"] == log.retries == 5
        assert snapshot["counters"]["faults.timeouts"] == log.timeouts == 1

    def test_healthy_log_publishes_nothing(self):
        registry = MetricsRegistry()
        FaultLog().publish_metrics(registry)
        snapshot = registry.snapshot()
        assert not snapshot["counters"]
        assert not snapshot["histograms"]


# ------------------------------------------------------------- cache metrics

class TestCellCacheMetrics:
    def test_hits_and_misses_counted_when_enabled(self, tmp_path):
        from repro.experiments.results import CellCache

        cache = CellCache(tmp_path / "cells")
        registry = MetricsRegistry()
        set_enabled(True)
        with use_registry(registry):
            assert cache.get("k") is None          # miss
            cache.put("k", 42)
            assert cache.get("k") == 42            # hit
        snapshot = registry.snapshot()
        assert snapshot["counters"]["cells.misses"] == 1.0
        assert snapshot["counters"]["cells.hits"] == 1.0
        assert snapshot["spans"]["cells.get"]["count"] == 2
        assert snapshot["spans"]["cells.put"]["count"] == 1
        # The cache's own bookkeeping is unchanged by telemetry.
        assert (cache.hits, cache.misses) == (1, 1)

    def test_no_counters_when_disabled(self, tmp_path):
        from repro.experiments.results import CellCache

        cache = CellCache(tmp_path / "cells")
        registry = MetricsRegistry()
        set_enabled(False)
        with use_registry(registry):
            cache.get("k")
            cache.put("k", 1)
            cache.get("k")
        snapshot = registry.snapshot()
        assert not snapshot["counters"]
        assert not snapshot["spans"]


# ------------------------------------------------------------------ plan cache

class TestPlanCacheMetrics:
    def test_collector_publishes_gauges(self):
        from repro.abr.planner import enumerate_level_sequences

        clear_plan_cache()
        enumerate_level_sequences(3, 2)
        enumerate_level_sequences(3, 2)
        snapshot = MetricsRegistry().snapshot()
        assert snapshot["gauges"]["plan_cache.misses"] >= 1.0
        assert snapshot["gauges"]["plan_cache.hits"] >= 1.0
        assert snapshot["gauges"]["plan_cache.currsize"] >= 1.0


# ---------------------------------------------------------------- CLI profile

class TestProfileCommand:
    @pytest.mark.slow
    def test_profile_json_smoke(self, tmp_path, capsys):
        from repro.experiments.cli import main

        events = tmp_path / "run.jsonl"
        prom = tmp_path / "metrics.prom"
        code = main([
            "profile", "headline", "--scale", "tiny",
            "--backend", "lockstep", "--json",
            "--events", str(events), "--prom", str(prom),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "headline"
        assert payload["phases"]["dispatch_s"] > 0.0
        assert payload["phases"]["planner_kernel_s"] > 0.0
        assert payload["started_at"]
        assert payload["duration_s"] > 0.0
        for line in events.read_text().splitlines():
            json.loads(line)
        assert "repro_span_seconds_total" in prom.read_text()
        # Profiling must not leave tracing on for the rest of the process.
        assert trace_mod.TRACE.enabled is False
