"""Bit-identity of the lockstep engine against serial execution.

The lockstep core's contract is *exact* reproduction of the serial
backend's results — same levels, same stall placement, same float-for-float
session durations — across every registered ABR family, including SENSEI's
proactive-stall scheduling and trained RL policies, and across ragged
batches (sessions ending at different chunk counts) and degenerate batch
shapes.  These tests are the enforcement of that contract.
"""

from __future__ import annotations

from unittest import mock

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.pensieve import PensieveABR, PensieveConfig, PensieveTrainer
from repro.abr.rate import RateBasedABR
from repro.core.sensei_abr import SenseiFuguABR, make_sensei_pensieve
from repro.engine.lockstep import (
    _PlannerDriverBase,
    order_supports_lockstep,
    run_orders_lockstep,
    supports_lockstep,
)
from repro.engine.runner import BatchRunner, WorkOrder, orders_for_grid
from repro.network.bank import TraceBank
from repro.network.trace import ThroughputTrace
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.video import SourceVideo


def _encode(video_id: str, genre: str, duration_s: float, seed: int):
    source = SourceVideo.synthesize(
        video_id, genre, duration_s=duration_s, chunk_duration_s=4.0, seed=seed
    )
    return SyntheticEncoder(seed=seed + 10).encode(source, DEFAULT_LADDER)


@pytest.fixture(scope="module")
def ragged_grid():
    """Videos of *different* chunk counts x traces, with per-video weights."""
    videos = [
        _encode("lk-sports", "sports", 80.0, 21),
        _encode("lk-nature", "nature", 120.0, 22),
        _encode("lk-game", "gaming", 48.0, 23),
    ]
    traces = TraceBank(num_traces=3, duration_s=400.0, seed=41).traces()
    rng = np.random.default_rng(5)
    weights = {
        enc.source.video_id: rng.uniform(0.5, 2.0, enc.num_chunks)
        for enc in videos
    }
    return videos, traces, weights


def assert_results_identical(left, right):
    """Bitwise identity of two StreamResults."""
    assert np.array_equal(left.rendered.levels, right.rendered.levels)
    assert np.array_equal(left.rendered.stalls_s, right.rendered.stalls_s)
    assert left.rendered.startup_delay_s == right.rendered.startup_delay_s
    assert left.total_bytes == right.total_bytes
    assert left.session_duration_s == right.session_duration_s
    assert left.abr_name == right.abr_name
    assert left.trace_name == right.trace_name
    assert (
        left.timeline.measured_throughputs_mbps()
        == right.timeline.measured_throughputs_mbps()
    )
    assert len(left.timeline.stalls) == len(right.timeline.stalls)
    for a, b in zip(left.timeline.stalls, right.timeline.stalls):
        assert (a.cause, a.chunk_index, a.start_time_s, a.duration_s) == (
            b.cause, b.chunk_index, b.start_time_s, b.duration_s
        )


def _run_both(abrs, videos, traces, weights=None):
    keyed = orders_for_grid(abrs, videos, traces, weights_by_video=weights)
    orders = [order for _, order in keyed]
    serial = BatchRunner(backend="serial").run_orders(orders)
    lockstep = BatchRunner(backend="lockstep").run_orders(orders)
    assert len(serial) == len(lockstep) == len(orders)
    for left, right in zip(serial, lockstep):
        assert_results_identical(left, right)
    return serial


class TestLockstepEquivalence:
    def test_planner_families_bit_identical(self, ragged_grid):
        """MPC, Fugu and SENSEI-Fugu (batched drivers) on a ragged grid."""
        videos, traces, weights = ragged_grid
        _run_both(
            [ModelPredictiveABR(), FuguABR(), SenseiFuguABR()],
            videos, traces, weights,
        )

    def test_simple_families_bit_identical(self, ragged_grid):
        """BBA (dedicated driver) and rate-based (generic driver)."""
        videos, traces, weights = ragged_grid
        _run_both([BufferBasedABR(), RateBasedABR()], videos, traces, weights)

    def test_trained_rl_policies_bit_identical(self, ragged_grid):
        """Greedy Pensieve / SENSEI-Pensieve with trained weights."""
        videos, traces, weights = ragged_grid
        pensieve = PensieveABR(config=PensieveConfig(seed=11))
        PensieveTrainer(pensieve, seed=12).train(videos, traces, episodes=3)
        sensei = make_sensei_pensieve(seed=13)
        PensieveTrainer(sensei, seed=14).train(
            videos, traces, episodes=3, weights_by_video=weights
        )
        _run_both([pensieve, sensei], videos, traces, weights)

    def test_sensei_proactive_stalls_survive_lockstep(self, ragged_grid):
        """The equivalence covers sessions that actually schedule stalls."""
        videos, traces, weights = ragged_grid
        # A strongly weight-contrasted video over the slowest trace provokes
        # SENSEI's proactive stalls; assert at least one session stalls so
        # this test cannot silently stop covering the stall path.
        contrast = {
            video.source.video_id: np.where(
                np.arange(video.num_chunks) % 4 == 0, 3.0, 0.4
            )
            for video in videos
        }
        results = _run_both([SenseiFuguABR()], videos, traces, contrast)
        assert any(
            result.timeline.proactive_stall_count() > 0 for result in results
        )

    def test_single_session_batch(self, ragged_grid):
        videos, traces, weights = ragged_grid
        _run_both([FuguABR()], videos[:1], traces[:1], weights)

    def test_mixed_ladder_widths_share_a_shard(self, ragged_grid):
        """Videos on ladders of different widths step in one SoA shard
        (the size/quality matrices are level-padded; candidate trees stay
        grouped per ladder)."""
        from repro.video.chunk import EncodingLadder

        videos, traces, _ = ragged_grid
        narrow = EncodingLadder(bitrates_kbps=(300.0, 1200.0, 2850.0))
        source = SourceVideo.synthesize(
            "lk-narrow", "gaming", duration_s=64.0, chunk_duration_s=4.0,
            seed=29,
        )
        mixed = [videos[0], SyntheticEncoder(seed=31).encode(source, narrow)]
        _run_both(
            [BufferBasedABR(), FuguABR(), SenseiFuguABR()],
            mixed, traces[:2],
        )

    def test_seed_reference_planner_takes_generic_path(self, ragged_grid):
        """use_fast_planner=False still runs (per-session driver)."""
        videos, traces, _ = ragged_grid
        _run_both(
            [FuguABR(use_fast_planner=False)], videos[:1], traces[:2]
        )

    def test_empty_orders(self):
        assert BatchRunner(backend="lockstep").run_orders([]) == []

    def test_merge_and_split_thresholds_do_not_change_results(
        self, ragged_grid
    ):
        """Grouping heuristics are pure performance knobs."""
        videos, traces, weights = ragged_grid
        keyed = orders_for_grid(
            [FuguABR(), SenseiFuguABR()], videos, traces,
            weights_by_video=weights,
        )
        orders = [order for _, order in keyed]
        reference = BatchRunner(backend="serial").run_orders(orders)
        for merge, split in [(1, None), (1000, 2), (4, 8)]:
            with mock.patch.object(
                _PlannerDriverBase, "MERGE_BELOW", merge
            ), mock.patch.object(_PlannerDriverBase, "SPLIT_ABOVE", split):
                results = run_orders_lockstep(orders)
            for left, right in zip(reference, results):
                assert_results_identical(left, right)

    def test_exploring_rl_policy_falls_back_to_serial_execution(
        self, ragged_grid
    ):
        """*Unseeded* greedy=False policies depend on one shared RNG stream
        consumed across sessions: lockstep must execute them serially (and
        say so via order_supports_lockstep)."""
        videos, traces, _ = ragged_grid
        explorer = PensieveABR(config=PensieveConfig(seed=3), greedy=False)
        assert not supports_lockstep(explorer)
        orders = [
            WorkOrder(abr=explorer, encoded=videos[0], trace=trace)
            for trace in traces
        ]
        assert not any(order_supports_lockstep(order) for order in orders)
        # The exploration RNG is shared across sessions and consumed by
        # every run, so both backends must start it from the same state.
        explorer.agent.reseed_exploration(123)
        serial = BatchRunner(backend="serial").run_orders(orders)
        explorer.agent.reseed_exploration(123)
        lockstep = BatchRunner(backend="lockstep").run_orders(orders)
        for left, right in zip(serial, lockstep):
            assert_results_identical(left, right)

    def test_seeded_exploring_rl_policy_batches_in_lockstep(
        self, ragged_grid
    ):
        """Pinning ``WorkOrder.exploration_seed`` lifts the fallback: each
        session gets a private RNG stream, so the batched RL driver can
        co-schedule exploring sessions and still match serial bitwise
        (the full differential fuzz lives in tests/test_rl_batch.py)."""
        videos, traces, _ = ragged_grid
        explorer = PensieveABR(config=PensieveConfig(seed=3), greedy=False)
        orders = [
            WorkOrder(
                abr=explorer, encoded=videos[0], trace=trace,
                exploration_seed=900 + index,
            )
            for index, trace in enumerate(traces)
        ]
        assert all(order_supports_lockstep(order) for order in orders)
        serial = BatchRunner(backend="serial").run_orders(orders)
        lockstep = BatchRunner(backend="lockstep").run_orders(orders)
        for left, right in zip(serial, lockstep):
            assert_results_identical(left, right)


@st.composite
def lockstep_scenarios(draw):
    """Random session/scenario configurations for differential fuzzing.

    Every component is derived from drawn seeds, so hypothesis shrinks a
    failure to a minimal (videos, traces, ABRs, weights) combination and
    prints it as the falsifying example — a directly re-runnable repro.
    """
    video_specs = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["sports", "nature", "gaming", "animation"]),
                st.integers(6, 24),   # chunks
                st.integers(0, 30),   # seed
            ),
            min_size=1,
            max_size=3,
        )
    )
    videos = [
        _encode(f"fz-{genre}-{index}-{seed}", genre, chunks * 4.0, seed)
        for index, (genre, chunks, seed) in enumerate(video_specs)
    ]
    trace_seed = draw(st.integers(0, 50))
    num_traces = draw(st.integers(1, 3))
    scale = draw(st.floats(0.25, 1.5))
    traces = [
        trace.scaled(scale)
        for trace in TraceBank(
            num_traces=num_traces, duration_s=300.0, seed=trace_seed
        ).traces()
    ]
    families = draw(
        st.lists(
            st.sampled_from(["bba", "rate", "mpc", "fugu", "sensei"]),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    abrs = [
        {
            "bba": BufferBasedABR,
            "rate": RateBasedABR,
            "mpc": ModelPredictiveABR,
            "fugu": FuguABR,
            "sensei": SenseiFuguABR,
        }[family]()
        for family in families
    ]
    weights = None
    if draw(st.booleans()):
        rng = np.random.default_rng(draw(st.integers(0, 1000)))
        weights = {
            video.source.video_id: rng.uniform(0.3, 3.0, video.num_chunks)
            for video in videos
        }
    return videos, traces, abrs, weights


class TestDifferentialFuzz:
    """Randomized differential fuzzing: SoA lockstep == serial, bitwise.

    Complements the fixed equivalence grid above with randomly drawn
    session/scenario configurations; hypothesis shrinks any failure to a
    minimal seeded repro and prints it, so a bit-identity regression
    arrives as a small, re-runnable counterexample rather than a red grid.
    """

    @given(lockstep_scenarios())
    @settings(max_examples=12, deadline=None)
    def test_lockstep_bitwise_equals_serial(self, scenario):
        videos, traces, abrs, weights = scenario
        _run_both(abrs, videos, traces, weights)


class TestProcessShardBackend:
    def test_single_core_falls_back_to_lockstep_in_process(self, ragged_grid):
        """On a 1-core host the process backend must not spawn a pool."""
        videos, traces, weights = ragged_grid
        keyed = orders_for_grid([FuguABR()], videos, traces,
                                weights_by_video=weights)
        orders = [order for _, order in keyed]
        reference = BatchRunner(backend="serial").run_orders(orders)
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=1):
            with mock.patch(
                "repro.engine.runner.ProcessPoolExecutor",
                side_effect=AssertionError("pool must not be created"),
            ):
                results = BatchRunner(backend="process").run_orders(orders)
        for left, right in zip(reference, results):
            assert_results_identical(left, right)

    @pytest.mark.slow
    def test_shard_dispatch_bit_identical(self, ragged_grid):
        """Chunked shards through real workers reproduce serial results."""
        videos, traces, weights = ragged_grid
        keyed = orders_for_grid(
            [BufferBasedABR(), SenseiFuguABR()], videos, traces,
            weights_by_video=weights,
        )
        orders = [order for _, order in keyed]
        reference = BatchRunner(backend="serial").run_orders(orders)
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=4):
            results = BatchRunner(
                backend="process", max_workers=2
            ).run_orders(orders)
        for left, right in zip(reference, results):
            assert_results_identical(left, right)

    @pytest.mark.slow
    def test_persistent_pool_reuse_and_close(self):
        """A persistent runner reuses one pool across calls until closed."""
        with BatchRunner(
            backend="process", max_workers=2, persistent=True
        ) as runner:
            first = runner.map_ordered(_double, list(range(8)))
            pool = runner._pool
            assert pool is not None
            second = runner.map_ordered(_double, list(range(8)))
            assert runner._pool is pool
            assert first == second == [2 * i for i in range(8)]
        assert runner._pool is None

    def test_auto_prefers_lockstep_on_single_core(self):
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=1):
            assert BatchRunner.auto().backend == "lockstep"
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=8):
            assert BatchRunner.auto().backend == "process"


def _double(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return 2 * value
