"""Integration tests for the experiment harness (tiny scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.core.sensei_abr import SenseiPensieveABR, make_sensei_pensieve
from repro.experiments.common import ExperimentContext, ExperimentScale
from repro.experiments import abr_eval, qoe_models, sensitivity
from repro.training.checkpoint import CheckpointStore


@pytest.fixture(scope="module")
def tiny_context():
    """A very small context so integration tests stay fast."""
    scale = ExperimentScale(
        name="tiny",
        num_videos=2,
        num_traces=2,
        step1_ratings=5,
        step2_ratings=2,
        pensieve_episodes=8,
        trace_duration_s=700.0,
    )
    return ExperimentContext(scale=scale, seed=13)


class TestContext:
    def test_video_ids_span_scale(self, tiny_context):
        assert len(tiny_context.video_ids()) == 2

    def test_videos_and_traces_materialise(self, tiny_context):
        assert len(tiny_context.videos()) == 2
        assert len(tiny_context.traces()) == 2

    def test_profiles_are_cached(self, tiny_context):
        first = tiny_context.profile("soccer1")
        second = tiny_context.profile("soccer1")
        assert first is second
        assert np.mean(first.weights) == pytest.approx(1.0)

    def test_sensei_qoe_model_has_all_profiles(self, tiny_context):
        model = tiny_context.sensei_qoe_model()
        for video_id in tiny_context.video_ids():
            assert model.has_profile(video_id)

    def test_stream_qoe_in_unit_range(self, tiny_context):
        encoded = tiny_context.videos()[0]
        trace = tiny_context.traces()[0]
        qoe = tiny_context.stream_qoe(tiny_context.make_bba(), encoded, trace)
        assert 0.0 <= qoe <= 1.0

    def test_gain_over(self, tiny_context):
        assert tiny_context.gain_over(0.6, 0.5) == pytest.approx(0.2)

    def test_profiler_is_cached(self, tiny_context):
        assert tiny_context.profiler() is tiny_context.profiler()

    def test_tiny_scale_preset(self):
        scale = ExperimentScale.tiny()
        assert scale.name == "tiny"
        assert scale.num_videos == 2


class TestContextAgentCaching:
    """Profile/agent caching and the checkpoint-first policy resolution."""

    def _scale(self, **overrides):
        fields = dict(
            name="tiny-rl",
            num_videos=1,
            num_traces=1,
            step1_ratings=4,
            step2_ratings=2,
            pensieve_episodes=2,
            trace_duration_s=400.0,
        )
        fields.update(overrides)
        return ExperimentScale(**fields)

    def test_install_validates_types(self, tmp_path):
        context = ExperimentContext(
            scale=self._scale(), seed=5, checkpoint_root=tmp_path
        )
        with pytest.raises(ValueError, match="non-SENSEI"):
            context.install_trained_agents(pensieve=make_sensei_pensieve(seed=1))
        with pytest.raises(ValueError, match="SenseiPensieveABR"):
            context.install_trained_agents(
                sensei_pensieve=PensieveABR(config=PensieveConfig(seed=1))
            )

    def test_installed_agents_take_priority(self, tmp_path):
        context = ExperimentContext(
            scale=self._scale(), seed=5, checkpoint_root=tmp_path
        )
        agent = PensieveABR(config=PensieveConfig(seed=2))
        context.install_trained_agents(pensieve=agent)
        assert context.trained_pensieve() is agent
        assert context.trained_agent_sources["pensieve"] == "installed"

    def test_checkpoint_store_resolution(self, tmp_path):
        missing = ExperimentContext(
            scale=self._scale(), seed=5,
            checkpoint_root=tmp_path / "never-created",
        )
        assert missing.checkpoint_store() is None
        existing_root = tmp_path / "checkpoints"
        existing_root.mkdir()
        context = ExperimentContext(
            scale=self._scale(), seed=5, checkpoint_root=existing_root
        )
        assert context.checkpoint_store() is not None

    def test_trained_pensieve_loads_checkpoint_by_default(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoints")
        saved = PensieveABR(config=PensieveConfig(seed=31))
        store.save(saved, "pensieve-best")
        context = ExperimentContext(
            scale=self._scale(), seed=5,
            checkpoint_root=tmp_path / "checkpoints",
        )
        loaded = context.trained_pensieve()
        assert context.trained_agent_sources["pensieve"].startswith(
            "checkpoint:pensieve-best@"
        )
        assert loaded.config.seed == 31
        assert not isinstance(loaded, SenseiPensieveABR)
        # Cached: a second call returns the same instance.
        assert context.trained_pensieve() is loaded

    def test_checkpoint_preference_best_over_final(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoints")
        store.save(PensieveABR(config=PensieveConfig(seed=41)), "pensieve-final")
        store.save(PensieveABR(config=PensieveConfig(seed=42)), "pensieve-best")
        context = ExperimentContext(
            scale=self._scale(), seed=5,
            checkpoint_root=tmp_path / "checkpoints",
        )
        assert context.trained_pensieve().config.seed == 42

    def test_sensei_checkpoint_resolution(self, tmp_path):
        store = CheckpointStore(tmp_path / "checkpoints")
        store.save(make_sensei_pensieve(seed=51), "sensei-pensieve-best")
        context = ExperimentContext(
            scale=self._scale(), seed=5,
            checkpoint_root=tmp_path / "checkpoints",
        )
        agent = context.trained_sensei_pensieve()
        assert isinstance(agent, SenseiPensieveABR)
        assert context.trained_agent_sources["sensei-pensieve"].startswith(
            "checkpoint:sensei-pensieve-best@"
        )

    def test_ad_hoc_fallback_without_checkpoints(self, tmp_path):
        empty_root = tmp_path / "checkpoints"
        empty_root.mkdir()
        context = ExperimentContext(
            scale=self._scale(), seed=5, checkpoint_root=empty_root
        )
        agent = context.trained_pensieve()
        assert agent.trained_episodes > 0
        assert context.trained_agent_sources["pensieve"] == "ad-hoc-training"


class TestSensitivityExperiments:
    def test_table1(self, tiny_context):
        result = sensitivity.table1_video_set(tiny_context)
        assert result["num_videos"] == 16

    def test_fig01(self, tiny_context):
        result = sensitivity.fig01_video_series_mos(tiny_context, clip_chunks=5)
        assert len(result["mos"]) == 5
        assert result["max_min_gap"] > 0.0

    def test_fig03(self, tiny_context):
        result = sensitivity.fig03_qoe_gap_cdf(tiny_context)
        assert result["num_series"] == 2 * 3
        assert 0.0 <= result["fraction_above_40pct"] <= 1.0

    def test_fig04(self, tiny_context):
        result = sensitivity.fig04_incident_positions(tiny_context, clip_chunks=5)
        assert set(result["curves"]) == {
            "rebuffer_1s", "rebuffer_4s", "bitrate_drop_4s"
        }
        assert result["rank_correlation_1s_vs_4s"] > 0.5

    def test_fig05(self, tiny_context):
        result = sensitivity.fig05_incident_rank_correlation(tiny_context)
        assert result["mean_1s_vs_4s"] > 0.5
        assert result["mean_1s_vs_drop"] > 0.2

    def test_fig20(self, tiny_context):
        result = sensitivity.fig20_cv_models(tiny_context, video_ids=("lava", "tank"))
        assert set(result["per_video"]) == {"lava", "tank"}
        for name, value in result["mean_rank_correlation"].items():
            assert -1.0 <= value <= 1.0


class TestQoEModelExperiments:
    def test_fig02_fig15(self, tiny_context):
        result = qoe_models.fig02_fig15_model_accuracy(tiny_context, lstm_epochs=2)
        evaluations = result["evaluations"]
        assert {"SENSEI", "KSQI", "LSTM-QoE", "P.1203"} <= set(evaluations)
        sensei = evaluations["SENSEI"]
        assert sensei["plcc"] > 0.5
        # At this tiny scale the comparison is noisy; SENSEI must stay in the
        # same accuracy band as the best baseline (the full comparison runs
        # in the Figure 2/15 benchmark at larger scale).
        baseline_plcc = max(
            evaluations[name]["plcc"] for name in ("KSQI", "LSTM-QoE", "P.1203")
        )
        assert sensei["plcc"] >= baseline_plcc - 0.15

    def test_fig12c(self, tiny_context):
        result = qoe_models.fig12c_cost_vs_qoe(tiny_context)
        assert result["arms"]["pruned"]["cost_usd_per_min"] < (
            result["arms"]["exhaustive"]["cost_usd_per_min"]
        )
        assert result["pruning_cost_saving"] > 0.3

    def test_appendix_b(self, tiny_context):
        result = qoe_models.appendix_b_rating_sanitization(tiny_context, clip_chunks=5)
        assert result["masters_only"]["rejection_rate"] <= (
            result["all_workers"]["rejection_rate"] + 0.05
        )


class TestABREvalExperiments:
    def test_fig12a(self, tiny_context):
        result = abr_eval.fig12a_qoe_gain_cdf(tiny_context)
        assert "SENSEI" in result["per_algorithm"]
        assert result["num_pairs"] == 4

    def test_fig13_and_fig14(self, tiny_context):
        per_video = abr_eval.fig13_gain_per_video(tiny_context)
        per_trace = abr_eval.fig14_gain_per_trace(tiny_context)
        assert len(per_video["rows"]) == 2
        assert len(per_trace["rows"]) == 2

    def test_headline(self, tiny_context):
        result = abr_eval.headline_numbers(tiny_context)
        assert 0.0 <= result["mean_qoe"]["SENSEI"] <= 1.0
        assert result["mean_qoe"]["SENSEI"] >= result["mean_qoe"]["BBA"] - 0.05

    def test_fig06(self, tiny_context):
        result = abr_eval.fig06_potential_gains(
            tiny_context, video_ids=["soccer1"],
            scaling_ratios=(0.5, 1.0), beam_width=8,
        )
        assert len(result["aware_qoe"]) == 2
        assert result["aware_qoe"][-1] >= result["unaware_qoe"][-1] - 0.05

    def test_fig12b(self, tiny_context):
        result = abr_eval.fig12b_bandwidth_usage(
            tiny_context, scaling_ratios=(0.5, 1.0)
        )
        for curve in result["curves"].values():
            assert len(curve) == 2

    def test_fig17(self, tiny_context):
        result = abr_eval.fig17_bandwidth_variance(
            tiny_context, noise_levels_mbps=(0.0, 0.5)
        )
        assert len(result["throughput_std_kbps"]) == 2
        assert set(result["curves"]) == {"Fugu", "SENSEI-Fugu"}

    def test_fig18b(self, tiny_context):
        result = abr_eval.fig18b_gain_breakdown(tiny_context)
        assert set(result) == {
            "base_abr_with_ksqi", "only_bitrate_adaptation", "full_sensei"
        }
