"""Tests for the CV highlight baselines (Appendix D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cv.highlights import (
    AMVMLikeModel,
    DSNLikeModel,
    Video2GIFLikeModel,
    all_highlight_models,
)
from repro.qoe.ground_truth import GroundTruthOracle
from repro.utils.stats import spearman_correlation


class TestHighlightModels:
    @pytest.mark.parametrize("model_cls", [
        AMVMLikeModel, DSNLikeModel, Video2GIFLikeModel,
    ])
    def test_scores_per_chunk_in_unit_range(self, model_cls, small_video):
        scores = model_cls().chunk_scores(small_video)
        assert scores.shape == (small_video.num_chunks,)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_all_three_models_listed(self):
        names = {m.name for m in all_highlight_models()}
        assert names == {"AMVM", "DSN", "Video2GIF"}

    def test_amvm_tracks_motion(self, small_video):
        scores = AMVMLikeModel().raw_scores(small_video)
        motion = small_video.feature_matrix()[:, 0]
        assert np.corrcoef(scores, motion)[0, 1] > 0.8

    def test_video2gif_tracks_information(self, small_video):
        scores = Video2GIFLikeModel().raw_scores(small_video)
        information = small_video.feature_matrix()[:, 2]
        assert np.corrcoef(scores, information)[0, 1] > 0.5

    def test_cv_models_do_not_explain_sensitivity_better_than_oracle(
        self, library, oracle
    ):
        """Appendix D's negative result: highlight scores correlate with true
        sensitivity substantially worse than the (crowdsourced) estimate."""
        video = library.source("soccer1")
        truth = oracle.normalized_sensitivity(video)
        for model in all_highlight_models():
            correlation = spearman_correlation(model.chunk_scores(video), truth)
            assert correlation < 0.85

    def test_models_are_deterministic(self, small_video):
        model = DSNLikeModel()
        assert np.allclose(
            model.chunk_scores(small_video), model.chunk_scores(small_video)
        )
