"""Tests for the batch simulation engine.

Covers the four engine layers: session precompute (observation slices and
history rings), plan caching and the vectorised evaluator, the BatchRunner
backends, and the equivalence guarantee — every backend returns numerically
identical :class:`~repro.player.session.StreamResult`s to the sequential
seed loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.base import ABRAlgorithm, Decision
from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.abr.planner import (
    clear_plan_cache,
    enumerate_level_sequences,
    evaluate_candidates,
    plan_cache_info,
)
from repro.core.sensei_abr import SenseiFuguABR
from repro.engine import BatchRunner, HistoryRing, SessionPrecompute, WorkOrder
from repro.engine.report import BenchReport, read_bench_report, write_bench_report
from repro.engine.runner import orders_for_grid
from repro.network.bank import TraceBank
from repro.network.trace import ThroughputTrace
from repro.player.simulator import simulate_many, simulate_session
from repro.qoe.ksqi import KSQIModel
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.video import SourceVideo

from tests.test_abr import make_observation


# ---------------------------------------------------------------- precompute


class TestSessionPrecompute:
    def test_matrices_match_stacked_chunks(self, small_encoded):
        pre = SessionPrecompute.of(small_encoded)
        assert np.array_equal(pre.sizes_bytes, small_encoded.sizes_matrix())
        assert np.array_equal(pre.quality, small_encoded.quality_matrix())

    def test_upcoming_slices_match_seed_stacking(self, small_encoded):
        pre = SessionPrecompute.of(small_encoded)
        for chunk_index in range(small_encoded.num_chunks):
            horizon = min(5, small_encoded.num_chunks - chunk_index)
            sizes, quality = pre.upcoming(chunk_index, horizon)
            expected_sizes = np.stack(
                [
                    small_encoded.chunks[chunk_index + offset].sizes_bytes
                    for offset in range(horizon)
                ]
            )
            assert np.array_equal(sizes, expected_sizes)
            assert quality.shape == expected_sizes.shape

    def test_cached_per_video_instance(self, small_encoded):
        assert SessionPrecompute.of(small_encoded) is SessionPrecompute.of(
            small_encoded
        )

    def test_matrices_read_only(self, small_encoded):
        pre = SessionPrecompute.of(small_encoded)
        with pytest.raises(ValueError):
            pre.sizes_bytes[0, 0] = 1.0

    def test_cache_not_pickled_with_video(self, small_encoded):
        """The per-video cache must not ride along in work-order pickles."""
        import pickle

        SessionPrecompute.of(small_encoded)  # attach the cache
        clone = pickle.loads(pickle.dumps(small_encoded))
        assert not any(key.startswith("_") for key in clone.__dict__)
        # The clone rebuilds its own precompute with identical contents.
        assert np.array_equal(
            SessionPrecompute.of(clone).sizes_bytes,
            SessionPrecompute.of(small_encoded).sizes_bytes,
        )


class TestHistoryRing:
    def test_matches_list_tail_semantics(self):
        ring = HistoryRing(4)
        reference: list = []
        for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]:
            ring.append(value)
            reference.append(value)
            assert np.array_equal(
                ring.as_array(), np.asarray(reference[-4:], dtype=float)
            )
        assert len(ring) == 4
        assert ring.last() == 7.0

    def test_empty_ring(self):
        ring = HistoryRing(3)
        assert ring.as_array().size == 0
        assert ring.last(default=2.5) == 2.5


# ------------------------------------------------------------- plan caching


class TestPlanCache:
    def test_cache_returns_identical_tree(self):
        clear_plan_cache()
        first = enumerate_level_sequences(5, 3, max_step=2, start_level=2)
        second = enumerate_level_sequences(5, 3, max_step=2, start_level=2)
        assert first is second
        assert plan_cache_info().hits >= 1
        assert not first.flags.writeable

    def test_cache_matches_uncached_enumeration(self):
        for kwargs in (
            dict(max_step=None, start_level=None),
            dict(max_step=1, start_level=0),
            dict(max_step=2, start_level=4),
            dict(max_step=2, start_level=-1),
        ):
            cached = enumerate_level_sequences(5, 3, **kwargs)
            fresh = enumerate_level_sequences(5, 3, use_cache=False, **kwargs)
            assert np.array_equal(cached, fresh)

    def test_uncached_is_writable(self):
        fresh = enumerate_level_sequences(3, 2, use_cache=False)
        fresh[0, 0] = 1  # must not raise

    def test_start_level_irrelevant_without_max_step(self):
        a = enumerate_level_sequences(4, 2, start_level=1)
        b = enumerate_level_sequences(4, 2, start_level=3)
        assert a is b


# ------------------------------------------------- vectorised plan evaluation


class TestVectorizedEvaluator:
    def test_matches_reference_on_random_observations(self):
        rng = np.random.default_rng(7)
        model = KSQIModel()
        for _ in range(60):
            obs = make_observation(
                buffer_s=float(rng.uniform(0.5, 40.0)),
                last_level=int(rng.integers(0, 5)),
                chunk_size_scale=float(rng.uniform(0.3, 3.0)),
            )
            candidates = enumerate_level_sequences(
                5, 3, max_step=2, start_level=obs.last_level
            )
            scenarios = [
                (float(rng.uniform(0.2, 5.0)), 0.3),
                (float(rng.uniform(0.2, 5.0)), 0.7),
            ]
            weights = rng.uniform(0.2, 2.0, 3)
            for stalls in [(0.0,), (0.0, 1.0, 2.0)]:
                fast = evaluate_candidates(
                    obs, candidates, scenarios, model,
                    weights=weights, stall_options_s=stalls,
                )
                ref = evaluate_candidates(
                    obs, candidates, scenarios, model,
                    weights=weights, stall_options_s=stalls, vectorized=False,
                )
                assert fast.best_score == pytest.approx(ref.best_score, abs=1e-9)
                # On an exact score tie between two (level, stall) optima the
                # implementations may break it differently; otherwise the
                # chosen action (and its risk signal) must agree.
                if (fast.best_level, fast.best_stall_s) != (
                    ref.best_level, ref.best_stall_s
                ):
                    assert fast.best_score == ref.best_score
                else:
                    assert fast.expected_rebuffer_s == pytest.approx(
                        ref.expected_rebuffer_s, abs=1e-6
                    )

    def test_num_candidates_counts_full_cross_product(self):
        obs = make_observation()
        candidates = enumerate_level_sequences(5, 3)
        scenarios = [(1.0, 0.5), (2.0, 0.3), (3.0, 0.2)]
        stalls = (0.0, 1.0)
        for vectorized in (True, False):
            evaluation = evaluate_candidates(
                obs, candidates, scenarios, KSQIModel(),
                stall_options_s=stalls, vectorized=vectorized,
            )
            assert evaluation.num_candidates == (
                candidates.shape[0] * len(stalls) * len(scenarios)
            )


# ----------------------------------------------------------------- runner


def _double(value: int) -> int:
    """Module-level so the process backend can pickle it."""
    return 2 * value


def _type_name(value) -> str:
    """Module-level so the process backend can pickle it."""
    return type(value).__name__


def _raise_type_error(value):
    """Module-level so the process backend can pickle it."""
    raise TypeError(f"deliberate failure on {value!r}")


class TestBatchRunner:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(backend="threads")

    def test_serial_map_preserves_order(self):
        runner = BatchRunner()
        assert runner.map_ordered(_double, list(range(10))) == [
            2 * i for i in range(10)
        ]

    def test_empty_orders(self):
        assert BatchRunner().run_orders([]) == []

    @pytest.mark.slow
    def test_process_map_preserves_order(self):
        runner = BatchRunner(backend="process", max_workers=2)
        assert runner.map_ordered(_double, list(range(16))) == [
            2 * i for i in range(16)
        ]

    def test_unpicklable_falls_back_to_serial(self):
        runner = BatchRunner(backend="process", max_workers=2)
        closure = lambda x: x + 1  # noqa: E731 — deliberately unpicklable
        with pytest.warns(RuntimeWarning):
            assert runner.map_ordered(closure, [1, 2, 3]) == [2, 3, 4]

    @pytest.mark.slow
    def test_worker_exception_propagates_without_serial_rerun(self):
        """A TypeError raised by fn itself is the caller's bug: it must
        propagate, not trigger the unpicklable-batch serial fallback."""
        runner = BatchRunner(backend="process", max_workers=2)
        with pytest.raises(TypeError, match="deliberate"):
            runner.map_ordered(_raise_type_error, [1, 2])

    @pytest.mark.slow
    def test_heterogeneous_unpicklable_item_falls_back_mid_flight(self):
        """The first item pickles fine, a later one does not: the pool
        attempt must be abandoned and the whole batch rerun serially."""
        runner = BatchRunner(backend="process", max_workers=2)
        items = [3, lambda: None, 5]  # the lambda cannot be pickled
        with pytest.warns(RuntimeWarning, match="rerunning serially"):
            assert runner.map_ordered(_type_name, items) == [
                "int", "function", "int"
            ]

    def test_orders_for_grid_matches_seed_nesting(self, small_encoded):
        traces = [
            ThroughputTrace.constant(2.0, name="t0"),
            ThroughputTrace.constant(1.0, name="t1"),
        ]
        abrs = [BufferBasedABR(), FuguABR()]
        keyed = orders_for_grid(abrs, [small_encoded], traces)
        keys = [key for key, _ in keyed]
        assert keys == [
            ("BBA", "test-sports", "t0"),
            ("BBA", "test-sports", "t1"),
            ("Fugu", "test-sports", "t0"),
            ("Fugu", "test-sports", "t1"),
        ]


# ------------------------------------------------------------- equivalence


def _sequential_reference_grid(abrs, videos, traces, weights_by_video=None):
    """The seed ``simulate_many`` loop, spelled out independently."""
    weights_by_video = weights_by_video or {}
    results = []
    for abr in abrs:
        for encoded in videos:
            weights = weights_by_video.get(encoded.source.video_id)
            for trace in traces:
                results.append(
                    (
                        abr.name, encoded.source.video_id, trace.name,
                        simulate_session(
                            abr, encoded, trace, chunk_weights=weights
                        ),
                    )
                )
    return results


def assert_stream_results_identical(left, right):
    """Numerical identity of two StreamResults (not just closeness)."""
    assert np.array_equal(left.rendered.levels, right.rendered.levels)
    assert np.array_equal(left.rendered.stalls_s, right.rendered.stalls_s)
    assert left.rendered.startup_delay_s == right.rendered.startup_delay_s
    assert left.total_bytes == right.total_bytes
    assert left.session_duration_s == right.session_duration_s
    assert left.abr_name == right.abr_name
    assert left.trace_name == right.trace_name
    assert (
        left.timeline.measured_throughputs_mbps()
        == right.timeline.measured_throughputs_mbps()
    )


@pytest.fixture(scope="module")
def equivalence_grid():
    """A seeded quick-scale grid: 2 videos x 3 traces x 3 ABR families."""
    videos = []
    for index, (vid, genre) in enumerate(
        [("eq-sports", "sports"), ("eq-nature", "nature")]
    ):
        source = SourceVideo.synthesize(
            vid, genre, duration_s=80.0, chunk_duration_s=4.0, seed=20 + index
        )
        videos.append(SyntheticEncoder(seed=30 + index).encode(source, DEFAULT_LADDER))
    traces = TraceBank(num_traces=3, duration_s=400.0, seed=41).traces()
    rng = np.random.default_rng(5)
    weights_by_video = {
        enc.source.video_id: rng.uniform(0.5, 2.0, enc.num_chunks)
        for enc in videos
    }
    return videos, traces, weights_by_video


def _grid_abrs():
    return [BufferBasedABR(), FuguABR(), SenseiFuguABR()]


class TestBatchRunnerEquivalence:
    def test_serial_backend_matches_sequential_simulate_many(
        self, equivalence_grid
    ):
        videos, traces, weights = equivalence_grid
        reference = _sequential_reference_grid(
            _grid_abrs(), videos, traces, weights
        )
        batched = simulate_many(
            _grid_abrs(), videos, traces, weights_by_video=weights,
            runner=BatchRunner(backend="serial"),
        )
        assert len(reference) == len(batched) == 18
        for (k1, v1, t1, r1), (k2, v2, t2, r2) in zip(reference, batched):
            assert (k1, v1, t1) == (k2, v2, t2)
            assert_stream_results_identical(r1, r2)

    @pytest.mark.slow
    def test_process_backend_matches_sequential_simulate_many(
        self, equivalence_grid
    ):
        videos, traces, weights = equivalence_grid
        reference = _sequential_reference_grid(
            _grid_abrs(), videos, traces, weights
        )
        batched = simulate_many(
            _grid_abrs(), videos, traces, weights_by_video=weights,
            runner=BatchRunner(backend="process", max_workers=2, chunksize=2),
        )
        assert len(reference) == len(batched)
        for (k1, v1, t1, r1), (k2, v2, t2, r2) in zip(reference, batched):
            assert (k1, v1, t1) == (k2, v2, t2)
            assert_stream_results_identical(r1, r2)

    def test_fast_session_path_matches_seed_path(self, equivalence_grid):
        """use_precompute=True reproduces the seed per-chunk implementation."""
        videos, traces, _ = equivalence_grid
        for abr_factory in (BufferBasedABR, FuguABR):
            fast = simulate_session(abr_factory(), videos[0], traces[0])
            seed_path = simulate_session(
                abr_factory(), videos[0], traces[0], use_precompute=False
            )
            assert np.array_equal(
                fast.rendered.levels, seed_path.rendered.levels
            )
            assert fast.session_duration_s == pytest.approx(
                seed_path.session_duration_s, abs=1e-6
            )


# ------------------------------------------------------------------ report


class TestBenchReport:
    def test_round_trip(self, tmp_path):
        report = BenchReport(
            sessions_per_sec=12.5,
            decisions_per_sec={"Fugu": 900.0},
            grid={"seed_seconds": 3.0, "engine_seconds": 0.9, "speedup": 3.33},
        )
        path = write_bench_report(report, tmp_path / "BENCH_engine.json")
        loaded = read_bench_report(path)
        assert loaded["sessions_per_sec"] == 12.5
        assert loaded["grid"]["speedup"] == 3.33
        assert "cpu_count" in loaded["meta"]

    def test_missing_report_reads_none(self, tmp_path):
        assert read_bench_report(tmp_path / "nope.json") is None
