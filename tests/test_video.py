"""Tests for the video substrate: ladder, content, encoder, library, renderings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.chunk import DEFAULT_LADDER, EncodingLadder
from repro.video.content import ContentGenerator, GENRES
from repro.video.encoder import SyntheticEncoder
from repro.video.library import TEST_VIDEO_SPECS, VideoLibrary
from repro.video.rendering import (
    QualityIncident,
    inject_incident,
    make_video_series,
    render_pristine,
)
from repro.video.video import SourceVideo


class TestEncodingLadder:
    def test_default_ladder_matches_paper(self):
        assert DEFAULT_LADDER.bitrates_kbps == (300.0, 750.0, 1200.0, 1850.0, 2850.0)
        assert DEFAULT_LADDER.num_levels == 5

    def test_levels_ordering(self):
        assert DEFAULT_LADDER.lowest_level == 0
        assert DEFAULT_LADDER.highest_level == 4

    def test_bitrate_of(self):
        assert DEFAULT_LADDER.bitrate_of(2) == 1200.0

    def test_bitrate_of_out_of_range(self):
        with pytest.raises(ValueError):
            DEFAULT_LADDER.bitrate_of(5)

    def test_label_of(self):
        assert DEFAULT_LADDER.label_of(4) == "1080p"

    def test_level_for_bitrate_picks_highest_feasible(self):
        assert DEFAULT_LADDER.level_for_bitrate(2000) == 3

    def test_level_for_bitrate_below_lowest(self):
        assert DEFAULT_LADDER.level_for_bitrate(100) == 0

    def test_chunk_size_bits(self):
        assert DEFAULT_LADDER.chunk_size_bits(0, 4.0) == pytest.approx(300_000 * 4)

    def test_rejects_non_increasing(self):
        with pytest.raises(ValueError):
            EncodingLadder.from_bitrates([100, 100, 300])

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            EncodingLadder.from_bitrates([500])

    @given(st.integers(0, 4))
    @settings(max_examples=10, deadline=None)
    def test_level_roundtrip(self, level):
        rate = DEFAULT_LADDER.bitrate_of(level)
        assert DEFAULT_LADDER.level_for_bitrate(rate) == level


class TestContentGenerator:
    @pytest.mark.parametrize("genre", GENRES)
    def test_generates_requested_length(self, genre):
        descriptors = ContentGenerator(seed=1).generate("v", genre, 30)
        assert len(descriptors) == 30

    @pytest.mark.parametrize("genre", GENRES)
    def test_fields_in_unit_range(self, genre):
        for d in ContentGenerator(seed=1).generate("v", genre, 40):
            for value in (d.motion, d.complexity, d.information, d.key_moment):
                assert 0.0 <= value <= 1.0

    def test_deterministic_per_name(self):
        a = ContentGenerator(seed=1).generate("v", "sports", 20)
        b = ContentGenerator(seed=1).generate("v", "sports", 20)
        assert [d.key_moment for d in a] == [d.key_moment for d in b]

    def test_different_names_differ(self):
        a = ContentGenerator(seed=1).generate("v1", "sports", 20)
        b = ContentGenerator(seed=1).generate("v2", "sports", 20)
        assert [d.key_moment for d in a] != [d.key_moment for d in b]

    def test_sports_has_key_moments(self):
        descriptors = ContentGenerator(seed=1).generate("match", "sports", 50)
        key = np.array([d.key_moment for d in descriptors])
        assert key.max() > key.mean() + 0.25

    def test_nature_is_calmer_than_sports(self):
        gen = ContentGenerator(seed=1)
        sports = np.mean([d.key_moment for d in gen.generate("a", "sports", 50)])
        nature = np.mean([d.key_moment for d in gen.generate("a", "nature", 50)])
        assert nature < sports

    def test_unknown_genre_rejected(self):
        with pytest.raises(ValueError):
            ContentGenerator().generate("v", "opera", 10)


class TestSourceVideo:
    def test_synthesize_basic(self, small_video):
        assert small_video.num_chunks == 12
        assert small_video.duration_s == pytest.approx(48.0)

    def test_descriptor_access(self, small_video):
        assert small_video.descriptor(0).motion >= 0.0
        with pytest.raises(ValueError):
            small_video.descriptor(99)

    def test_feature_matrix_shape(self, small_video):
        assert small_video.feature_matrix().shape == (12, 3)

    def test_key_moment_curve_matches_descriptors(self, small_video):
        curve = small_video.key_moment_curve()
        assert curve[3] == small_video.descriptor(3).key_moment

    def test_chunk_start_time(self, small_video):
        assert small_video.chunk_start_time(2) == 8.0

    def test_rejects_bad_genre(self):
        with pytest.raises(ValueError):
            SourceVideo.synthesize("x", "drama", duration_s=40)


class TestSyntheticEncoder:
    def test_sizes_increase_with_level(self, small_encoded):
        for chunk in small_encoded.chunks:
            assert np.all(np.diff(chunk.sizes_bytes) > 0)

    def test_quality_non_decreasing_with_level(self, small_encoded):
        for chunk in small_encoded.chunks:
            assert np.all(np.diff(chunk.quality) >= 0)

    def test_quality_bounded(self, small_encoded):
        quality = small_encoded.quality_matrix()
        assert quality.min() >= 1.0 and quality.max() <= 100.0

    def test_sizes_near_nominal(self, small_encoded):
        nominal = 2850_000 * 4 / 8  # bytes for the top rung
        top_sizes = small_encoded.sizes_matrix()[:, -1]
        assert np.all(top_sizes > 0.5 * nominal)
        assert np.all(top_sizes < 2.0 * nominal)

    def test_encoding_is_deterministic(self, small_video):
        a = SyntheticEncoder(seed=5).encode(small_video)
        b = SyntheticEncoder(seed=5).encode(small_video)
        assert np.allclose(a.sizes_matrix(), b.sizes_matrix())

    def test_matrix_shapes(self, small_encoded):
        assert small_encoded.sizes_matrix().shape == (12, 5)
        assert small_encoded.quality_matrix().shape == (12, 5)

    def test_chunk_accessors(self, small_encoded):
        assert small_encoded.chunk_size_bytes(0, 0) < small_encoded.chunk_size_bytes(0, 4)
        assert small_encoded.chunk_quality(0, 0) <= small_encoded.chunk_quality(0, 4)


class TestVideoLibrary:
    def test_has_sixteen_videos(self, library):
        assert len(library.video_ids()) == 16
        assert len(TEST_VIDEO_SPECS) == 16

    def test_covers_four_genres(self, library):
        genres = {library.spec(v).genre for v in library.video_ids()}
        assert genres == {"sports", "gaming", "nature", "animation"}

    def test_spec_lookup(self, library):
        spec = library.spec("soccer1")
        assert spec.name == "Soccer1"
        assert spec.source_dataset == "LIVE-NFLX-II"

    def test_unknown_video_raises(self, library):
        with pytest.raises(KeyError):
            library.spec("nonexistent")

    def test_source_caching(self, library):
        assert library.source("soccer1") is library.source("soccer1")

    def test_encoded_matches_source_chunks(self, library):
        encoded = library.encoded("mountain")
        assert encoded.num_chunks == library.source("mountain").num_chunks

    def test_durations_match_table1(self, library):
        assert library.source("bigbuckbunny").duration_s == pytest.approx(596, abs=4)
        assert library.source("mountain").duration_s == pytest.approx(84, abs=4)

    def test_by_genre(self, library):
        sports = library.by_genre("sports")
        assert len(sports) == 7

    def test_table1_rows(self, library):
        rows = library.table1_rows()
        assert len(rows) == 16
        assert rows[1]["name"] == "Soccer1"
        assert rows[1]["length"] == "3:20"


class TestRenderings:
    def test_pristine_is_top_rate_no_stalls(self, pristine):
        assert np.all(pristine.levels == 4)
        assert pristine.total_stall_s() == 0.0
        assert pristine.incident_summary() == "pristine"

    def test_inject_rebuffering(self, pristine):
        rendered = inject_incident(pristine, QualityIncident.rebuffering(3, 2.0))
        assert rendered.stalls_s[3] == 2.0
        assert rendered.total_stall_s() == 2.0
        # the original is untouched (immutability)
        assert pristine.total_stall_s() == 0.0

    def test_inject_bitrate_drop(self, pristine):
        rendered = inject_incident(pristine, QualityIncident.bitrate_drop(2, 0))
        assert rendered.levels[2] == 0
        assert rendered.levels[1] == 4

    def test_bitrate_drop_duration(self, pristine):
        incident = QualityIncident.bitrate_drop(2, 1, duration_chunks=3)
        rendered = inject_incident(pristine, incident)
        assert list(rendered.levels[2:5]) == [1, 1, 1]

    def test_incident_beyond_video_rejected(self, pristine):
        with pytest.raises(ValueError):
            inject_incident(pristine, QualityIncident.rebuffering(99, 1.0))

    def test_rebuffering_requires_positive_stall(self):
        with pytest.raises(ValueError):
            QualityIncident.rebuffering(0, 0.0)

    def test_make_video_series_one_per_chunk(self, small_encoded):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 1.0))
        assert len(series) == small_encoded.num_chunks
        for index, rendered in enumerate(series):
            assert rendered.stalls_s[index] == 1.0

    def test_series_with_selected_positions(self, small_encoded):
        series = make_video_series(
            small_encoded, QualityIncident.rebuffering(0, 1.0), chunk_indices=[1, 5]
        )
        assert len(series) == 2

    def test_switch_counting(self, small_encoded):
        levels = np.array([4, 4, 2, 2, 4, 4, 4, 4, 4, 4, 4, 4])
        rendered = render_pristine(small_encoded)
        from dataclasses import replace
        rendered = replace(rendered, levels=levels)
        assert rendered.num_switches() == 2
        mags = rendered.switch_magnitudes_kbps()
        assert mags[0] == 0.0
        assert mags[2] == pytest.approx(2850 - 1200)

    def test_rebuffering_ratio(self, pristine):
        rendered = inject_incident(pristine, QualityIncident.rebuffering(0, 4.8))
        assert rendered.rebuffering_ratio() == pytest.approx(4.8 / 48.0)

    def test_average_bitrate_and_bytes(self, pristine):
        assert pristine.average_bitrate_kbps() == pytest.approx(2850.0)
        assert pristine.total_bytes() > 0
