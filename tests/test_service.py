"""The decision service: batching boundaries, fairness, online ≡ offline.

Four layers, bottom-up:

* ``TestAdaptiveBatcher`` — the micro-batching window's boundary
  conditions: flush-at-N vs flush-at-T, the timer-race generation guard,
  empty windows, error propagation, drain semantics.
* ``TestWeightedFairScheduler`` — SFQ admission: the deterministic
  drain-order skew test (≥1.8x grants for 4:1 weights under contention),
  backlog shedding, timeout shedding, virtual-time idleness.
* ``TestDecisionService`` — the service loop: eviction mid-flight,
  degraded fallback, in-flight protocol guard, clean shutdown draining
  the window, telemetry surface.
* ``TestOnlineOfflineIdentity`` — the golden contract: sessions decided
  online through micro-batched ``plan_batch`` flushes finish bit-identical
  to the serial offline ``WorkOrder`` path, across every non-RL ABR
  family, while running concurrently in shared flushes.

No pytest-asyncio in the toolchain: every async scenario runs under a
plain ``asyncio.run`` inside a synchronous test.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.spec import resolve_scale
from repro.obs import MetricsRegistry, use_registry
from repro.service import (
    ABR_FACTORIES,
    AdaptiveBatcher,
    DecisionService,
    SessionEvictedError,
    TenantSpec,
    WeightedFairScheduler,
    bench_payload,
    default_tenants,
    register_load,
    run_load,
    verify_online_offline,
)
from repro.service.loadgen import synthetic_weights

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def context() -> ExperimentContext:
    return ExperimentContext(scale=resolve_scale("tiny"), seed=7)


# ------------------------------------------------------------------ batcher


class TestAdaptiveBatcher:
    def test_flush_at_size(self):
        async def scenario():
            flushes = []

            def flush(items):
                flushes.append(list(items))
                return [item * 2 for item in items]

            batcher = AdaptiveBatcher(flush, max_batch=4, max_delay_s=5.0)
            results = await asyncio.gather(
                *(batcher.submit(i) for i in range(4))
            )
            return flushes, results, batcher

        flushes, results, batcher = asyncio.run(scenario())
        # The 4th submit trips the size trigger long before the 5 s timer.
        assert flushes == [[0, 1, 2, 3]]
        assert results == [0, 2, 4, 6]
        assert batcher.size_flushes == 1
        assert batcher.timer_flushes == 0

    def test_flush_at_timer(self):
        async def scenario():
            batcher = AdaptiveBatcher(
                lambda items: [item + 1 for item in items],
                max_batch=100, max_delay_s=0.01,
            )
            result = await asyncio.wait_for(batcher.submit(41), timeout=5.0)
            return result, batcher

        result, batcher = asyncio.run(scenario())
        assert result == 42
        assert batcher.timer_flushes == 1
        assert batcher.size_flushes == 0

    def test_stale_timer_is_ignored_after_size_flush(self):
        """The flush-at-N vs flush-at-T race: a timer armed for an
        already-flushed window must not flush its successor early."""
        async def scenario():
            flushes = []

            def flush(items):
                flushes.append(list(items))
                return list(items)

            batcher = AdaptiveBatcher(flush, max_batch=2, max_delay_s=5.0)
            stale_generation = batcher._generation
            await asyncio.gather(batcher.submit(1), batcher.submit(2))
            assert flushes == [[1, 2]]
            # A new window opens; replay the stale window's timer.
            pending = asyncio.ensure_future(batcher.submit(3))
            await asyncio.sleep(0)
            batcher._on_timer(stale_generation)
            assert batcher.pending == 1  # guard held: item 3 still queued
            await batcher.drain()
            assert await pending == 3
            return flushes, batcher

        flushes, batcher = asyncio.run(scenario())
        assert flushes == [[1, 2], [3]]
        assert batcher.flush_count == 2

    def test_empty_window_timer_and_drain_are_noops(self):
        async def scenario():
            batcher = AdaptiveBatcher(lambda items: list(items),
                                      max_batch=4, max_delay_s=0.01)
            batcher._on_timer(batcher._generation)  # nothing queued
            await batcher.drain()  # empty drain
            await batcher.drain()  # idempotent
            assert batcher.flush_count == 0
            with pytest.raises(RuntimeError, match="draining"):
                await batcher.submit(1)

        asyncio.run(scenario())

    def test_flush_error_fails_every_waiter(self):
        async def scenario():
            def flush(items):
                raise RuntimeError("kernel exploded")

            batcher = AdaptiveBatcher(flush, max_batch=2, max_delay_s=5.0)
            results = await asyncio.gather(
                batcher.submit(1), batcher.submit(2),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_per_item_exception_results(self):
        async def scenario():
            def flush(items):
                return [
                    KeyError("gone") if item == "bad" else item
                    for item in items
                ]

            batcher = AdaptiveBatcher(flush, max_batch=2, max_delay_s=5.0)
            good, bad = await asyncio.gather(
                batcher.submit("good"), batcher.submit("bad"),
                return_exceptions=True,
            )
            return good, bad

        good, bad = asyncio.run(scenario())
        assert good == "good"
        assert isinstance(bad, KeyError)

    def test_adaptive_delay_shrinks_under_light_load(self):
        async def scenario():
            batcher = AdaptiveBatcher(lambda items: list(items),
                                      max_batch=16, max_delay_s=0.002,
                                      ewma_alpha=1.0)
            assert batcher.effective_delay_s() == pytest.approx(0.002)
            await asyncio.wait_for(batcher.submit(1), timeout=5.0)
            # One single-item flush: EWMA collapses to 1, the window
            # tightens toward min_delay for the next lull.
            assert batcher.ewma_size == 1.0
            assert batcher.effective_delay_s() < 0.002

        asyncio.run(scenario())


# ---------------------------------------------------------------- fairness


class TestWeightedFairScheduler:
    def test_weighted_contention_skew(self):
        """4:1 weights must yield a ≥1.8x grant ratio under contention.

        Deterministic variant of the FAIR_SCHED wave test: one slot, both
        tenants queue eight requests at equal offered load, and the grant
        order over the contention window is decided purely by SFQ start
        tags.
        """
        async def scenario():
            scheduler = WeightedFairScheduler(capacity=1, max_backlog=64)
            scheduler.set_weight("X", 4.0)
            scheduler.set_weight("Y", 1.0)
            order = []
            assert await scheduler.acquire("hold")  # occupy the slot

            async def worker(tenant):
                assert await scheduler.acquire(tenant)
                order.append(tenant)
                await scheduler.release(tenant)

            tasks = []
            for index in range(8):  # interleaved equal offered load
                tasks.append(asyncio.ensure_future(worker("X")))
                tasks.append(asyncio.ensure_future(worker("Y")))
                await asyncio.sleep(0)
            await scheduler.release("hold")
            await asyncio.gather(*tasks)
            return order, scheduler

        order, scheduler = asyncio.run(scenario())
        window = order[:10]
        grants_x = window.count("X")
        grants_y = window.count("Y")
        assert grants_x / max(grants_y, 1) >= 1.8
        assert scheduler.grants["X"] == scheduler.grants["Y"] == 8  # all served

    def test_backlog_overflow_sheds_immediately(self):
        async def scenario():
            scheduler = WeightedFairScheduler(capacity=1, max_backlog=2)
            assert await scheduler.acquire("t")
            queued = [
                asyncio.ensure_future(scheduler.acquire("t"))
                for _ in range(2)
            ]
            await asyncio.sleep(0)
            shed = await scheduler.acquire("t")  # 3rd waiter: over backlog
            assert shed is False
            assert scheduler.shed["t"] == 1
            await scheduler.release("t")
            assert await queued[0]
            await scheduler.release("t")
            assert await queued[1]
            await scheduler.release("t")

        asyncio.run(scenario())

    def test_timeout_sheds_and_rolls_back_virtual_time(self):
        async def scenario():
            scheduler = WeightedFairScheduler(capacity=1)
            assert await scheduler.acquire("a")
            shed = await scheduler.acquire("b", timeout=0.01)
            assert shed is False
            assert scheduler.shed["b"] == 1
            assert scheduler.queue_depth("b") == 0
            # The shed request must not have inflated b's next start tag.
            assert scheduler._finish_tags["b"] == pytest.approx(
                scheduler._virtual_time
            )
            await scheduler.release("a")
            # The lazily-cancelled waiter must not deadlock later grants.
            assert await scheduler.acquire("b", timeout=0.5)
            await scheduler.release("b")

        asyncio.run(scenario())

    def test_release_without_acquire_raises(self):
        async def scenario():
            scheduler = WeightedFairScheduler(capacity=1)
            with pytest.raises(RuntimeError, match="release"):
                await scheduler.release("t")

        asyncio.run(scenario())


# ----------------------------------------------------------------- service


def _register_one(service, context, tenant="t", session_id="s", kind="mpc"):
    videos = context.videos()
    traces = context.traces()
    encoded = videos[0]
    weights = (synthetic_weights(encoded.num_chunks)
               if kind == "sensei" else None)
    return service.register(
        tenant=tenant, session_id=session_id, abr=ABR_FACTORIES[kind](),
        encoded=encoded, trace=traces[0], chunk_weights=weights,
    )


class TestDecisionService:
    def test_eviction_mid_flight_fails_explicitly(self, context):
        async def scenario():
            service = DecisionService(max_batch=16, max_delay_s=0.05)
            _register_one(service, context)
            pending = asyncio.ensure_future(service.decide("t", "s"))
            await asyncio.sleep(0)  # request lands in the open window
            service.evict("t", "s")
            with pytest.raises(SessionEvictedError):
                await asyncio.wait_for(pending, timeout=5.0)
            await service.close()

        asyncio.run(scenario())

    def test_degraded_fallback_on_shed(self, context):
        async def scenario():
            registry = MetricsRegistry()
            with use_registry(registry):
                service = DecisionService(
                    max_batch=4, max_delay_s=0.005, capacity=1,
                    shed_timeout_s=0.01,
                )
                gold = _register_one(service, context, "gold", "g0")
                bronze = _register_one(service, context, "bronze", "b0")
                service.set_tenant_weight("gold", 4.0)
                service.set_tenant_weight("bronze", 1.0)
                # Occupy the only slot so bronze's request must shed.
                assert await service.scheduler.acquire("gold")
                response = await service.decide("bronze", "b0")
                await service.scheduler.release("gold")
                await service.close()
            return response, bronze, registry.snapshot()

        response, bronze, snapshot = asyncio.run(scenario())
        assert response.degraded is True
        assert response.level == 0
        assert response.proactive_stall_s == 0.0
        assert response.batch_size == 0
        # Degraded decisions still advance the session.
        assert bronze.state.chunk_index == 1
        assert bronze.degraded == 1
        assert snapshot["counters"]["service.degraded_total"] == 1
        assert snapshot["counters"]["service.tenant.bronze.degraded"] == 1

    def test_concurrent_decides_for_one_session_rejected(self, context):
        async def scenario():
            service = DecisionService(max_batch=16, max_delay_s=0.05)
            _register_one(service, context)
            first = asyncio.ensure_future(service.decide("t", "s"))
            await asyncio.sleep(0)
            with pytest.raises(RuntimeError, match="sequential"):
                await service.decide("t", "s")
            assert (await asyncio.wait_for(first, 5.0)).degraded is False
            await service.close()

        asyncio.run(scenario())

    def test_close_drains_in_flight_window(self, context):
        async def scenario():
            service = DecisionService(max_batch=16, max_delay_s=30.0)
            _register_one(service, context)
            pending = asyncio.ensure_future(service.decide("t", "s"))
            await asyncio.sleep(0)
            # The window would otherwise sit for 30 s; close() flushes it.
            await service.close()
            response = await asyncio.wait_for(pending, timeout=5.0)
            assert response.degraded is False
            with pytest.raises(RuntimeError, match="closed"):
                await service.decide("t", "s")
            await service.close()  # idempotent
            return service

        service = asyncio.run(scenario())
        assert service.health()["status"] == "closed"

    def test_close_shuts_owned_runner(self, context):
        async def scenario():
            service = DecisionService(max_batch=4, max_delay_s=0.005)
            entry = _register_one(service, context, kind="bba")
            while not entry.done:
                await service.decide("t", "s")
            offline = service.offline_result(entry)  # creates owned runner
            runner = service._runner
            await service.close()
            return entry, offline, runner, service

        entry, offline, runner, service = asyncio.run(scenario())
        assert runner is not None and runner._pool is None
        assert service._runner is None  # released through __exit__
        assert np.array_equal(
            entry.result.rendered.levels, offline.rendered.levels
        )

    def test_telemetry_surface(self, context):
        async def scenario():
            registry = MetricsRegistry()
            with use_registry(registry):
                service = DecisionService(max_batch=4, max_delay_s=0.005)
                entry = _register_one(service, context, kind="fugu")
                for _ in range(3):
                    await service.decide("t", "s")
                health = service.health()
                await service.close()
            return registry.snapshot(), health, entry

        snapshot, health, entry = asyncio.run(scenario())
        assert snapshot["counters"]["service.decisions_total"] == 3
        assert snapshot["counters"]["service.tenant.t.decisions"] == 3
        latency = snapshot["histograms"]["service.request_latency_s"]
        assert latency["count"] == 3
        # µs-resolution buckets, not the phase-scale defaults.
        assert latency["buckets"][0] < 1e-4
        assert snapshot["histograms"]["service.batch_size"]["count"] == 3
        assert health["sessions"] == 1
        assert health["sessions_by_tenant"] == {"t": 1}
        assert entry.decisions == 3


# ------------------------------------------------------- golden bit-identity


class TestOnlineOfflineIdentity:
    def test_all_families_bit_identical_under_shared_flushes(self, context):
        """Every non-RL family, decided online in *shared* micro-batches,
        must finish bit-identical to its serial offline run."""
        async def scenario():
            service = DecisionService(
                max_batch=8, max_delay_s=0.002, capacity=64,
                shed_timeout_s=None,
            )
            tenants = [
                TenantSpec("gold", weight=4.0, sessions=5,
                           abrs=("bba", "rate", "mpc", "fugu", "sensei")),
                TenantSpec("bronze", weight=1.0, sessions=5,
                           abrs=("sensei", "fugu", "mpc", "rate", "bba")),
            ]
            entries = register_load(service, context, tenants)
            report = await run_load(service, entries)
            verdict = verify_online_offline(service, entries)
            payload = bench_payload(service, report, tenants)
            await service.close()
            return entries, report, verdict, payload

        entries, report, verdict, payload = asyncio.run(scenario())
        assert report["finished_sessions"] == len(entries) == 10
        assert report["degraded"] == 0
        kinds = {entry.kind for entry in entries}
        assert kinds == {"generic", "mpc", "fugu", "sensei"}
        assert verdict["checked"] == 10
        assert verdict["identical"], verdict["mismatches"]
        # Shared flushes actually happened: sessions were co-batched.
        assert payload["batch"]["mean_size"] > 1.0
        assert payload["latency"]["p99_ms"] > 0.0
        assert payload["throughput"]["decisions"] == report["decisions"]

    def test_degraded_sessions_are_excluded_from_verification(self, context):
        async def scenario():
            service = DecisionService(max_batch=4, max_delay_s=0.005,
                                      capacity=1, shed_timeout_s=0.01)
            entry = _register_one(service, context, kind="bba")
            assert await service.scheduler.acquire("hold")
            degraded = await service.decide("t", "s")  # shed → degraded
            await service.scheduler.release("hold")
            while not entry.done:
                await service.decide("t", "s")
            verdict = verify_online_offline(service, [entry])
            await service.close()
            return degraded, verdict

        degraded, verdict = asyncio.run(scenario())
        assert degraded.degraded is True
        assert verdict["checked"] == 0  # divergence point documented out
