"""Tests for throughput traces, generators and the trace bank."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.bank import TraceBank
from repro.network.synthetic import (
    FCCLikeGenerator,
    HSDPALikeGenerator,
    MarkovTraceGenerator,
    RandomWalkTraceGenerator,
)
from repro.network.trace import ThroughputTrace


class TestThroughputTrace:
    def test_constant_trace_properties(self, constant_trace):
        assert constant_trace.mean_mbps == pytest.approx(2.0)
        assert constant_trace.std_mbps == pytest.approx(0.0)
        assert constant_trace.bandwidth_at(123.4) == 2.0

    def test_wraps_around(self, constant_trace):
        assert constant_trace.bandwidth_at(10 * constant_trace.duration_s + 1) == 2.0

    def test_download_time_constant_rate(self, constant_trace):
        # 1 MB at 2 Mbps = 4 seconds
        assert constant_trace.download_time_s(1_000_000, 0.0) == pytest.approx(4.0)

    def test_download_time_spans_rate_change(self):
        trace = ThroughputTrace.from_samples([(0.0, 1.0), (4.0, 4.0)], name="step")
        # 1 Mbit in the first second, then remaining 3 Mbit... 8 Mbit total:
        # 4 s at 1 Mbps = 4 Mbit, then 1 s at 4 Mbps = 4 Mbit -> 5 s.
        assert trace.download_time_s(1_000_000, 0.0) == pytest.approx(5.0)

    def test_download_time_requires_positive_size(self, constant_trace):
        with pytest.raises(ValueError):
            constant_trace.download_time_s(0.0, 0.0)

    def test_trace_arrays_frozen_against_desync(self, constant_trace):
        """In-place mutation would desync the cached download-time index."""
        with pytest.raises(ValueError):
            constant_trace.bandwidths_mbps[0] = 99.0
        with pytest.raises(ValueError):
            constant_trace.timestamps_s[0] = 1.0

    def test_pickle_drops_index_and_refreezes(self, constant_trace):
        """Work-order pickles ship only the declared fields; the clone
        re-derives its index and its arrays come back read-only."""
        import pickle

        payload = pickle.dumps(constant_trace)
        assert b"_cum_capacity_bits" not in payload
        clone = pickle.loads(payload)
        assert clone.download_time_s(1_000_000, 0.0) == pytest.approx(
            constant_trace.download_time_s(1_000_000, 0.0)
        )
        with pytest.raises(ValueError):
            clone.bandwidths_mbps[0] = 99.0

    def test_fast_integrator_matches_reference_walk(self):
        """The indexed download-time fast path must agree with the seed's
        segment-by-segment reference integrator away from the walk's
        knife-edge boundary epsilon (see the characterization test below)."""
        from repro.network.bank import TraceBank

        rng = np.random.default_rng(3)
        traces = TraceBank(num_traces=3, duration_s=300.0, seed=23).traces()
        traces.append(ThroughputTrace.from_samples([(0.0, 0.5)], name="single"))
        for trace in traces:
            for _ in range(60):
                size = float(rng.uniform(5e3, 8e6))
                start = float(rng.uniform(0.0, 4.0 * trace.duration_s))
                fast = trace.download_time_s(size, start)
                reference = trace.download_time_s_reference(size, start)
                assert fast == pytest.approx(reference, rel=1e-9, abs=1e-9)

    def test_fast_integrator_is_exact_at_reference_knife_edge(self):
        """Characterization: at knife-edge wraps the seed walk's 1e-12
        boundary epsilon charges a window at the previous segment's rate;
        the indexed fast path returns the exact piecewise integral."""
        from fractions import Fraction as F

        trace = ThroughputTrace(
            timestamps_s=np.array([0.0, 0.5, 0.6, 10.0]),
            bandwidths_mbps=np.array([5.0, 0.01, 20.0, 0.5]),
            name="uneven",
        )
        size_bytes, start = 33041341.75, 88.338
        # Exact integral in rational arithmetic (duration = 10 + median
        # spacing 0.5; per-segment capacities summed cycle by cycle).
        ts = [F(0), F(1, 2), F(3, 5), F(10)]
        duration = F(21, 2)
        rates = [F(5) * 10**6, F(1, 100) * 10**6, F(20) * 10**6, F(1, 2) * 10**6]
        ends = ts[1:] + [duration]
        caps = [r * (e - s) for r, s, e in zip(rates, ts, ends)]
        wrapped = F(88338, 1000) % duration
        seg = max(i for i in range(4) if ts[i] <= wrapped)
        bits_before = sum(caps[:seg]) + rates[seg] * (wrapped - ts[seg])
        target = bits_before + F(3304134175, 100) * 8
        full_cycles, within = divmod(target, sum(caps))
        cum = F(0)
        for j in range(4):
            if cum + caps[j] >= within:
                end_time = ts[j] + (within - cum) / rates[j]
                break
            cum += caps[j]
        exact = float(full_cycles * duration + end_time - wrapped)

        fast = trace.download_time_s(size_bytes, start)
        reference = trace.download_time_s_reference(size_bytes, start)
        assert fast == pytest.approx(exact, rel=1e-9)
        # The seed walk overshoots by an order of magnitude here — kept as
        # documentation of the divergence, not as desired behaviour.
        assert reference > 10 * fast

    def test_scaled(self, constant_trace):
        assert constant_trace.scaled(0.5).mean_mbps == pytest.approx(1.0)

    def test_scaled_rejects_nonpositive(self, constant_trace):
        with pytest.raises(ValueError):
            constant_trace.scaled(0.0)

    def test_with_added_noise_keeps_positive(self, constant_trace):
        noisy = constant_trace.with_added_noise(5.0, seed=1)
        assert np.all(noisy.bandwidths_mbps > 0)
        assert noisy.std_mbps > constant_trace.std_mbps

    def test_noise_zero_is_identity(self, constant_trace):
        same = constant_trace.with_added_noise(0.0, seed=1)
        assert np.allclose(same.bandwidths_mbps, constant_trace.bandwidths_mbps)

    def test_clipped_to_range(self):
        trace = ThroughputTrace.from_samples([(0, 0.1), (1, 10.0)])
        clipped = trace.clipped_to_range(0.2, 6.0)
        assert clipped.bandwidths_mbps.min() >= 0.2
        assert clipped.bandwidths_mbps.max() <= 6.0

    def test_truncated(self, constant_trace):
        short = constant_trace.truncated(10.0)
        assert short.timestamps_s.max() < 10.0

    def test_serialization_roundtrip(self, tmp_path, constant_trace):
        path = tmp_path / "trace.json"
        constant_trace.save(path)
        loaded = ThroughputTrace.load(path)
        assert loaded.name == constant_trace.name
        assert np.allclose(loaded.bandwidths_mbps, constant_trace.bandwidths_mbps)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            ThroughputTrace.from_samples([(0.0, -1.0)])

    def test_rejects_nonzero_start(self):
        with pytest.raises(ValueError):
            ThroughputTrace.from_samples([(1.0, 1.0)])

    @given(st.floats(0.3, 5.0), st.floats(10_000, 5_000_000))
    @settings(max_examples=20, deadline=None)
    def test_download_time_matches_rate_formula(self, rate, size):
        trace = ThroughputTrace.constant(rate, duration_s=10_000.0)
        expected = size * 8 / (rate * 1e6)
        assert trace.download_time_s(size, 0.0) == pytest.approx(expected, rel=1e-6)


class TestGenerators:
    @pytest.mark.parametrize("generator_cls", [
        MarkovTraceGenerator, HSDPALikeGenerator, FCCLikeGenerator,
        RandomWalkTraceGenerator,
    ])
    def test_generates_valid_trace(self, generator_cls):
        trace = generator_cls(seed=3).generate("t", duration_s=300.0)
        assert trace.duration_s >= 299.0
        assert np.all(trace.bandwidths_mbps > 0)

    def test_generation_is_deterministic(self):
        a = HSDPALikeGenerator(seed=3).generate("t", 200.0)
        b = HSDPALikeGenerator(seed=3).generate("t", 200.0)
        assert np.allclose(a.bandwidths_mbps, b.bandwidths_mbps)

    def test_different_names_differ(self):
        a = HSDPALikeGenerator(seed=3).generate("t1", 200.0)
        b = HSDPALikeGenerator(seed=3).generate("t2", 200.0)
        assert not np.allclose(a.bandwidths_mbps, b.bandwidths_mbps)

    def test_fcc_is_faster_than_hsdpa_on_average(self):
        fcc = FCCLikeGenerator(seed=3).generate_many(5, 600.0)
        hsdpa = HSDPALikeGenerator(seed=3).generate_many(5, 600.0)
        assert np.mean([t.mean_mbps for t in fcc]) > np.mean(
            [t.mean_mbps for t in hsdpa]
        )

    def test_bandwidth_range_matches_paper(self):
        traces = HSDPALikeGenerator(seed=3).generate_many(4, 600.0) + \
            FCCLikeGenerator(seed=3).generate_many(4, 600.0)
        for trace in traces:
            assert 0.2 <= trace.mean_mbps <= 6.0

    def test_generate_many_count(self):
        traces = FCCLikeGenerator(seed=1).generate_many(3, 100.0, prefix="x")
        assert [t.name for t in traces] == ["x-00", "x-01", "x-02"]


class TestTraceBank:
    def test_bank_size(self):
        bank = TraceBank(num_traces=6, duration_s=300.0)
        assert len(bank.traces()) == 6

    def test_bank_sorted_by_throughput(self):
        bank = TraceBank(num_traces=8, duration_s=300.0)
        means = bank.mean_throughputs_mbps()
        assert means == sorted(means)

    def test_bank_is_cached(self):
        bank = TraceBank(num_traces=4, duration_s=300.0)
        assert bank.traces()[0].name == bank.traces()[0].name

    def test_trace_index_bounds(self):
        bank = TraceBank(num_traces=3, duration_s=300.0)
        with pytest.raises(ValueError):
            bank.trace(3)

    def test_names_unique(self):
        bank = TraceBank(num_traces=10, duration_s=300.0)
        names = bank.names()
        assert len(set(names)) == len(names)
