"""Tests for the simulated crowdsourcing substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd.campaign import CampaignConfig, MTurkCampaign
from repro.crowd.cost import CostModel
from repro.crowd.survey import build_survey_plan
from repro.crowd.worker import SimulatedWorker, WorkerPool, WorkerProfile
from repro.video.rendering import QualityIncident, make_video_series, render_pristine


@pytest.fixture(scope="module")
def series(small_encoded):
    return make_video_series(small_encoded, QualityIncident.rebuffering(0, 1.0))


class TestWorkers:
    def test_pool_size_and_masters(self):
        pool = WorkerPool(size=50, master_fraction=0.8, seed=1)
        profiles = pool.profiles
        assert len(profiles) == 50
        master_share = np.mean([p.is_master for p in profiles])
        assert 0.5 < master_share <= 1.0

    def test_sample_workers_count(self):
        pool = WorkerPool(size=30, seed=1)
        assert len(pool.sample_workers(10)) == 10

    def test_sampling_more_than_pool_allows_replacement(self):
        pool = WorkerPool(size=5, seed=1)
        assert len(pool.sample_workers(20)) == 20

    def test_attentive_worker_rating_tracks_truth(self, pristine):
        profile = WorkerProfile(
            worker_id="w", bias=0.0, noise_sigma=0.0, attention=1.0
        )
        worker = SimulatedWorker(profile, seed=3)
        high = worker.rate(pristine, true_mos=4.8)
        low = worker.rate(pristine, true_mos=2.0)
        assert high.score > low.score
        assert high.watched_fully and high.incident_confirmed

    def test_rating_rounded_to_half_points(self, pristine):
        profile = WorkerProfile("w", bias=0.1, noise_sigma=0.2, attention=1.0)
        rating = SimulatedWorker(profile, seed=1).rate(pristine, true_mos=3.7)
        assert (rating.score * 2) == int(rating.score * 2)

    def test_rating_in_likert_range(self, pristine):
        profile = WorkerProfile("w", bias=5.0, noise_sigma=3.0, attention=1.0)
        rating = SimulatedWorker(profile, seed=1).rate(pristine, true_mos=4.9)
        assert 1.0 <= rating.score <= 5.0

    def test_true_mos_validation(self, pristine):
        profile = WorkerProfile("w", bias=0.0, noise_sigma=0.1, attention=1.0)
        with pytest.raises(ValueError):
            SimulatedWorker(profile).rate(pristine, true_mos=7.0)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkerProfile("w", bias=0.0, noise_sigma=0.1, attention=1.5)


class TestSurveyPlan:
    def test_every_rendering_gets_requested_ratings(self, series, pristine):
        plan = build_survey_plan(series, pristine, ratings_per_rendering=4,
                                 videos_per_survey=3, seed=1)
        counts = {r.render_id: 0 for r in series}
        for survey in plan.surveys:
            for rendering in survey.renderings:
                counts[rendering.render_id] += 1
        assert all(count == 4 for count in counts.values())

    def test_surveys_respect_size_limit(self, series, pristine):
        plan = build_survey_plan(series, pristine, ratings_per_rendering=3,
                                 videos_per_survey=4, seed=1)
        assert all(len(s.renderings) <= 4 for s in plan.surveys)

    def test_no_duplicate_rendering_within_survey(self, series, pristine):
        plan = build_survey_plan(series, pristine, ratings_per_rendering=5,
                                 videos_per_survey=4, seed=2)
        for survey in plan.surveys:
            ids = [r.render_id for r in survey.renderings]
            assert len(ids) == len(set(ids))

    def test_presentation_order_contains_reference(self, series, pristine):
        plan = build_survey_plan(series, pristine, ratings_per_rendering=2, seed=1)
        order = plan.surveys[0].presentation_order(np.random.default_rng(0))
        assert pristine.render_id in [r.render_id for r in order]

    def test_total_video_seconds_positive(self, series, pristine):
        plan = build_survey_plan(series, pristine, ratings_per_rendering=2, seed=1)
        assert plan.total_video_seconds() > 0


class TestCostModel:
    def test_payment_proportional_to_time(self):
        cost = CostModel(hourly_rate_usd=10.0, overhead_factor=1.0)
        assert cost.payment_for_watch_time(3600.0) == pytest.approx(10.0)
        assert cost.payment_for_watch_time(1800.0) == pytest.approx(5.0)

    def test_overhead_increases_cost(self):
        plain = CostModel(overhead_factor=1.0).payment_for_watch_time(3600)
        padded = CostModel(overhead_factor=1.5).payment_for_watch_time(3600)
        assert padded > plain

    def test_cost_per_source_minute(self):
        cost = CostModel()
        assert cost.cost_per_source_minute(60.0, 120.0) == pytest.approx(30.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(hourly_rate_usd=0.0)
        with pytest.raises(ValueError):
            CostModel(overhead_factor=0.9)


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign_result(self, oracle, series, pristine):
        campaign = MTurkCampaign(
            oracle=oracle,
            config=CampaignConfig(ratings_per_rendering=8, seed=5),
        )
        return campaign.run(series, reference=pristine)

    def test_every_rendering_has_mos(self, campaign_result, series):
        assert set(campaign_result.mos) == {r.render_id for r in series}

    def test_mos_in_likert_range(self, campaign_result):
        for value in campaign_result.mos.values():
            assert 1.0 <= value <= 5.0

    def test_normalized_mos_in_unit_range(self, campaign_result):
        for value in campaign_result.normalized_mos.values():
            assert 0.0 <= value <= 1.0

    def test_cost_accounting_positive(self, campaign_result):
        assert campaign_result.total_paid_usd > 0.0
        assert campaign_result.total_watch_seconds > 0.0

    def test_rejection_rate_reasonable(self, campaign_result):
        assert 0.0 <= campaign_result.rejection_rate() < 0.6

    def test_mos_tracks_true_qoe_ranking(self, oracle, campaign_result, series):
        true_values = [oracle.true_qoe(r) for r in series]
        mos_values = [campaign_result.mos[r.render_id] for r in series]
        assert np.corrcoef(true_values, mos_values)[0, 1] > 0.4

    def test_records_mark_reference_excluded(self, campaign_result, pristine):
        reference_records = [
            rec for rec in campaign_result.records
            if rec.rating.render_id == pristine.render_id
        ]
        assert all(not rec.accepted for rec in reference_records)

    def test_masters_rejected_less_than_general_pool(self, oracle, series, pristine):
        masters = MTurkCampaign(
            oracle=oracle,
            worker_pool=WorkerPool(master_fraction=1.0, seed=9),
            config=CampaignConfig(ratings_per_rendering=6, masters_only=True, seed=9),
        ).run(series, reference=pristine)
        general = MTurkCampaign(
            oracle=oracle,
            worker_pool=WorkerPool(master_fraction=0.0, seed=9),
            config=CampaignConfig(ratings_per_rendering=6, masters_only=False, seed=9),
        ).run(series, reference=pristine)
        assert masters.rejection_rate() <= general.rejection_rate()
