"""Tests for the baseline ABR algorithms and throughput predictors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.base import Decision, PlayerObservation, pad_history
from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.offline import OfflineOptimalABR
from repro.abr.pensieve import PensieveABR, PensieveConfig, PensieveTrainer
from repro.abr.planner import enumerate_level_sequences, evaluate_candidates
from repro.abr.rate import RateBasedABR
from repro.abr.throughput import (
    ErrorDistributionPredictor,
    EWMAPredictor,
    HarmonicMeanPredictor,
)
from repro.network.trace import ThroughputTrace
from repro.player.simulator import simulate_session
from repro.qoe.ksqi import KSQIModel
from repro.video.chunk import DEFAULT_LADDER


def make_observation(
    buffer_s=10.0,
    last_level=2,
    throughput=(1.5, 1.6, 1.4),
    chunk_index=5,
    num_chunks=20,
    horizon=4,
    weights=None,
    chunk_size_scale=1.0,
):
    """Build a synthetic PlayerObservation for unit tests."""
    num_levels = DEFAULT_LADDER.num_levels
    sizes = np.stack([
        np.array(DEFAULT_LADDER.bitrates_kbps) * 1000 * 4 / 8 * chunk_size_scale
        for _ in range(horizon)
    ])
    quality = np.stack([
        np.linspace(20, 90, num_levels) for _ in range(horizon)
    ])
    if weights is None:
        weights = np.ones(horizon)
    return PlayerObservation(
        chunk_index=chunk_index,
        num_chunks=num_chunks,
        buffer_s=buffer_s,
        last_level=last_level,
        throughput_history_mbps=np.asarray(throughput, dtype=float),
        download_time_history_s=np.full(len(throughput), 2.0),
        upcoming_sizes_bytes=sizes,
        upcoming_quality=quality,
        upcoming_weights=np.asarray(weights, dtype=float),
        chunk_duration_s=4.0,
        ladder=DEFAULT_LADDER,
    )


class TestBaseTypes:
    def test_decision_validation(self):
        with pytest.raises(ValueError):
            Decision(level=-1)
        with pytest.raises(ValueError):
            Decision(level=0, proactive_stall_s=-1.0)

    def test_pad_history(self):
        padded = pad_history([1.0, 2.0], 4)
        assert list(padded) == [0.0, 0.0, 1.0, 2.0]
        assert list(pad_history([1, 2, 3, 4, 5], 3)) == [3.0, 4.0, 5.0]

    def test_observation_helpers(self):
        obs = make_observation()
        assert obs.horizon == 4
        assert obs.chunks_remaining == 15
        assert obs.latest_throughput_mbps() == pytest.approx(1.4)
        assert obs.next_chunk_sizes().shape == (5,)

    def test_observation_no_history_default(self):
        obs = make_observation(throughput=())
        assert obs.latest_throughput_mbps(default=2.5) == 2.5


class TestBBA:
    def test_low_buffer_lowest_level(self):
        assert BufferBasedABR().decide(make_observation(buffer_s=1.0)).level == 0

    def test_high_buffer_highest_level(self):
        assert BufferBasedABR().decide(make_observation(buffer_s=50.0)).level == 4

    def test_intermediate_buffer_interpolates(self):
        abr = BufferBasedABR(reservoir_s=5.0, cushion_s=10.0)
        level = abr.decide(make_observation(buffer_s=10.0)).level
        assert 0 < level < 4

    def test_monotone_in_buffer(self):
        abr = BufferBasedABR()
        levels = [
            abr.decide(make_observation(buffer_s=b)).level
            for b in np.linspace(0, 40, 15)
        ]
        assert all(b >= a for a, b in zip(levels, levels[1:]))

    def test_never_stalls_proactively(self):
        assert BufferBasedABR().decide(make_observation()).proactive_stall_s == 0.0


class TestRateBased:
    def test_picks_sustainable_level(self):
        abr = RateBasedABR(safety_margin=1.0)
        decision = abr.decide(make_observation(throughput=(2.0, 2.0, 2.0)))
        assert decision.level == DEFAULT_LADDER.level_for_bitrate(2000)

    def test_safety_margin_reduces_level(self):
        aggressive = RateBasedABR(safety_margin=1.0)
        cautious = RateBasedABR(safety_margin=0.5)
        obs = make_observation(throughput=(2.0, 2.0, 2.0))
        assert cautious.decide(obs).level <= aggressive.decide(obs).level

    def test_no_history_uses_default(self):
        decision = RateBasedABR().decide(make_observation(throughput=()))
        assert 0 <= decision.level <= 4


class TestThroughputPredictors:
    def test_harmonic_mean_prediction(self):
        predictor = HarmonicMeanPredictor(window=3)
        obs = make_observation(throughput=(1.0, 2.0, 4.0))
        expected = 3 / (1 / 1 + 1 / 2 + 1 / 4)
        assert predictor.predict(obs) == pytest.approx(expected)

    def test_harmonic_mean_cold_start(self):
        predictor = HarmonicMeanPredictor(default_mbps=1.7)
        assert predictor.predict(make_observation(throughput=())) == 1.7

    def test_ewma_weights_recent_samples(self):
        predictor = EWMAPredictor(alpha=0.9)
        rising = predictor.predict(make_observation(throughput=(1.0, 1.0, 3.0)))
        falling = predictor.predict(make_observation(throughput=(3.0, 3.0, 1.0)))
        assert rising > falling

    def test_error_distribution_sums_to_one(self):
        predictor = ErrorDistributionPredictor()
        scenarios = predictor.predict_distribution(make_observation())
        total = sum(p for _, p in scenarios)
        assert total == pytest.approx(1.0)
        assert all(rate > 0 for rate, _ in scenarios)

    def test_error_distribution_cold_start_covers_all_bins(self):
        # Regression: the seed truncated the 5-entry cold-start template,
        # silently dropping probability mass for num_bins > 5.
        for num_bins in (3, 5, 7, 9):
            predictor = ErrorDistributionPredictor(num_bins=num_bins)
            scenarios = predictor.predict_distribution(make_observation())
            assert len(scenarios) == num_bins
            assert sum(p for _, p in scenarios) == pytest.approx(1.0)
            assert all(p > 0 for _, p in scenarios)

    def test_error_distribution_reset(self):
        predictor = ErrorDistributionPredictor()
        predictor.predict(make_observation())
        predictor.predict(make_observation())
        predictor.reset()
        assert predictor._num_ratios == 0
        assert not predictor._bin_counts.any()


class TestPlanner:
    def test_enumerate_all_sequences(self):
        candidates = enumerate_level_sequences(3, 2)
        assert candidates.shape == (9, 2)

    def test_enumerate_with_step_restriction(self):
        candidates = enumerate_level_sequences(5, 2, max_step=1, start_level=2)
        # first chunk in {1,2,3}, second within 1 of the first
        assert set(candidates[:, 0]) == {1, 2, 3}
        assert np.all(np.abs(np.diff(candidates, axis=1)) <= 1)

    def test_evaluation_prefers_high_quality_when_bandwidth_ample(self):
        obs = make_observation(buffer_s=30.0)
        candidates = enumerate_level_sequences(5, 3)
        evaluation = evaluate_candidates(
            obs, candidates, [(50.0, 1.0)], KSQIModel()
        )
        assert evaluation.best_level == 4
        assert evaluation.expected_rebuffer_s == pytest.approx(0.0)
        # One stall option x one scenario: the count is the candidate count.
        assert evaluation.num_candidates == candidates.shape[0]

    def test_evaluation_avoids_rebuffering_when_bandwidth_scarce(self):
        obs = make_observation(buffer_s=4.0, last_level=0)
        candidates = enumerate_level_sequences(5, 3)
        evaluation = evaluate_candidates(
            obs, candidates, [(0.35, 1.0)], KSQIModel()
        )
        assert evaluation.best_level <= 1

    def test_weights_shift_allocation(self):
        # Next chunk unimportant, later chunks very important, tight bandwidth:
        # the weighted plan should not spend more on the first chunk than the
        # unweighted plan does.
        obs = make_observation(buffer_s=8.0, last_level=2)
        candidates = enumerate_level_sequences(5, 3)
        scenarios = [(1.0, 1.0)]
        unweighted = evaluate_candidates(obs, candidates, scenarios, KSQIModel())
        weighted = evaluate_candidates(
            obs, candidates, scenarios, KSQIModel(), weights=np.array([0.2, 2.0, 2.0])
        )
        assert weighted.best_level <= unweighted.best_level

    def test_proactive_stall_penalised_without_benefit(self):
        obs = make_observation(buffer_s=30.0)
        candidates = enumerate_level_sequences(5, 3)
        evaluation = evaluate_candidates(
            obs, candidates, [(50.0, 1.0)], KSQIModel(),
            stall_options_s=(0.0, 2.0),
        )
        assert evaluation.best_stall_s == 0.0
        # num_candidates reports the full evaluated cross product:
        # candidates x stall options x throughput scenarios.
        assert evaluation.num_candidates == candidates.shape[0] * 2

    def test_num_candidates_counts_scenarios(self):
        obs = make_observation()
        candidates = enumerate_level_sequences(5, 2)
        scenarios = [(0.8, 0.25), (1.2, 0.5), (2.0, 0.25)]
        evaluation = evaluate_candidates(
            obs, candidates, scenarios, KSQIModel(), stall_options_s=(0.0, 1.0)
        )
        assert evaluation.num_candidates == candidates.shape[0] * 2 * 3


class TestMPCAndFugu:
    @pytest.mark.parametrize("abr_cls", [ModelPredictiveABR, FuguABR])
    def test_streams_without_error(self, abr_cls, small_encoded, constant_trace):
        result = simulate_session(abr_cls(), small_encoded, constant_trace)
        assert result.rendered.num_chunks == small_encoded.num_chunks

    @pytest.mark.parametrize("abr_cls", [ModelPredictiveABR, FuguABR])
    def test_avoids_stalls_on_steady_network(self, abr_cls, small_encoded, constant_trace):
        result = simulate_session(abr_cls(), small_encoded, constant_trace)
        assert result.rendered.total_stall_s() <= 1.0

    def test_fugu_uses_higher_bitrate_on_faster_network(self, small_encoded):
        slow = ThroughputTrace.constant(0.8, duration_s=600.0)
        fast = ThroughputTrace.constant(4.0, duration_s=600.0)
        slow_rate = simulate_session(FuguABR(), small_encoded, slow).average_bitrate_kbps
        fast_rate = simulate_session(FuguABR(), small_encoded, fast).average_bitrate_kbps
        assert fast_rate > slow_rate

    def test_fugu_beats_bba_on_true_qoe_over_trace_mix(self, small_encoded, oracle):
        from repro.network.bank import TraceBank
        bank = TraceBank(num_traces=4, duration_s=400.0, seed=17)
        fugu_scores, bba_scores = [], []
        for trace in bank.traces():
            fugu_scores.append(oracle.true_qoe(
                simulate_session(FuguABR(), small_encoded, trace).rendered))
            bba_scores.append(oracle.true_qoe(
                simulate_session(BufferBasedABR(), small_encoded, trace).rendered))
        assert np.mean(fugu_scores) > np.mean(bba_scores)


class TestPensieve:
    def test_state_dimensions(self):
        config = PensieveConfig()
        abr = PensieveABR(config=config)
        state = abr.encode_state(make_observation(horizon=4))
        assert state.shape == (config.state_dim,)

    def test_sensei_state_includes_weights(self):
        config = PensieveConfig(weight_horizon=5, stall_actions_s=(1.0, 2.0))
        abr = PensieveABR(config=config)
        state = abr.encode_state(make_observation(horizon=4, weights=[2.0] * 4))
        assert state.shape == (config.state_dim,)
        assert config.num_actions == 7

    def test_action_mapping(self):
        config = PensieveConfig(stall_actions_s=(1.0, 2.0))
        abr = PensieveABR(config=config)
        assert abr.action_to_decision(3).level == 3
        stall_decision = abr.action_to_decision(config.num_levels + 1)
        assert stall_decision.proactive_stall_s == 2.0

    def test_decide_returns_valid_decision(self, small_encoded, constant_trace):
        result = simulate_session(PensieveABR(), small_encoded, constant_trace)
        assert np.all(result.rendered.levels >= 0)
        assert np.all(result.rendered.levels <= 4)

    def test_training_improves_mean_return(self, small_encoded, constant_trace):
        abr = PensieveABR(config=PensieveConfig(seed=11))
        trainer = PensieveTrainer(abr, seed=12)
        history = trainer.train([small_encoded], [constant_trace], episodes=30)
        assert abr.trained_episodes == 30
        first = np.mean([h["mean_return"] for h in history[:5]])
        last = np.mean([h["mean_return"] for h in history[-5:]])
        assert last >= first - 0.05

    def test_capture_mechanism(self, small_encoded, constant_trace):
        abr = PensieveABR()
        abr.begin_capture()
        simulate_session(abr, small_encoded, constant_trace)
        trajectory = abr.end_capture()
        assert len(trajectory) == small_encoded.num_chunks


class TestOfflineOptimal:
    def test_plan_produces_valid_rendering(self, small_encoded, constant_trace):
        planner = OfflineOptimalABR(beam_width=8)
        rendered = planner.plan(small_encoded, constant_trace)
        assert rendered.num_chunks == small_encoded.num_chunks
        assert np.all(rendered.levels >= 0)

    def test_ample_bandwidth_yields_top_bitrate(self, small_encoded):
        trace = ThroughputTrace.constant(30.0, duration_s=600.0)
        rendered = OfflineOptimalABR(beam_width=8).plan(small_encoded, trace)
        assert rendered.average_bitrate_kbps() > 2500
        assert rendered.total_stall_s() == 0.0

    def test_scarce_bandwidth_lowers_bitrate(self, small_encoded, slow_trace):
        rendered = OfflineOptimalABR(beam_width=8).plan(small_encoded, slow_trace)
        assert rendered.average_bitrate_kbps() < 1500

    def test_weights_change_allocation(self, small_encoded, oracle):
        trace = ThroughputTrace.constant(1.2, duration_s=600.0)
        unaware = OfflineOptimalABR(beam_width=16).plan(small_encoded, trace)
        weights = oracle.normalized_sensitivity(small_encoded.source)
        aware = OfflineOptimalABR(
            weights=weights, allow_proactive_stalls=True, beam_width=16
        ).plan(small_encoded, trace)
        assert oracle.true_qoe(aware) >= oracle.true_qoe(unaware) - 0.02

    def test_weight_length_validation(self, small_encoded, constant_trace):
        planner = OfflineOptimalABR(weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            planner.plan(small_encoded, constant_trace)
