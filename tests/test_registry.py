"""Tests for the unified experiment API: specs, registry, artifacts, CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.core.sensei_abr import make_sensei_pensieve
from repro.engine.runner import BatchRunner
from repro.experiments import registry as registry_mod
from repro.experiments.cli import main as cli_main
from repro.training.checkpoint import CheckpointStore
from repro.experiments.registry import (
    context_for,
    experiment_names,
    get_experiment,
    run,
)
from repro.experiments.results import (
    ArtifactStore,
    CellCache,
    ResultSet,
    RESULTSET_FORMAT_VERSION,
)
from repro.experiments.spec import ExperimentSpec, resolve_scale, scale_names
from repro.faults.integrity import attach_checksum


def tiny_spec(experiment: str, **overrides) -> ExperimentSpec:
    fields = dict(experiment=experiment, scale="tiny", seed=13)
    fields.update(overrides)
    return ExperimentSpec(**fields)


class TestExperimentSpec:
    def test_defaults_and_freezing(self):
        spec = ExperimentSpec(
            experiment="fig04",
            params={"clip_chunks": 5, "ratios": [0.5, 1.0]},
        )
        assert spec.scale == "quick"
        assert spec.seed == 7
        assert isinstance(spec.params, tuple)
        assert spec.params_dict() == {"clip_chunks": 5, "ratios": [0.5, 1.0]}
        assert hash(spec) == hash(spec)  # fully hashable after freezing

    def test_hash_is_stable_and_param_order_independent(self):
        a = ExperimentSpec(experiment="fig04", params={"a": 1, "b": 2})
        b = ExperimentSpec(experiment="fig04", params={"b": 2, "a": 1})
        assert a.spec_hash() == b.spec_hash()

    def test_hash_tracks_result_shaping_fields(self):
        base = tiny_spec("fig04")
        assert base.spec_hash() != base.with_(seed=14).spec_hash()
        assert base.spec_hash() != base.with_(scale="quick").spec_hash()
        assert (
            base.spec_hash()
            != base.with_(params={"clip_chunks": 4}).spec_hash()
        )

    def test_hash_ignores_execution_backend(self):
        base = tiny_spec("fig04")
        assert base.spec_hash() == base.with_(backend="process").spec_hash()
        assert base.spec_hash() == base.with_(max_workers=4).spec_hash()

    def test_context_hash_is_figure_agnostic(self):
        a = tiny_spec("fig12a")
        b = tiny_spec("headline")
        assert a.spec_hash() != b.spec_hash()
        assert a.context_hash() == b.context_hash()
        assert a.context_hash() != a.with_(seed=99).context_hash()
        # Checkpoint state lives in the RL cell keys, not the directory
        # key, so base cells are shared across checkpoint roots.
        assert a.context_hash() == (
            a.with_(checkpoint_root="somewhere").context_hash()
        )

    def test_with_is_safe_on_dict_valued_params(self):
        spec = ExperimentSpec(experiment="fig04", params={"opts": {"x": 1}})
        clone = spec.with_(seed=9)
        assert clone.seed == 9
        assert clone.params_dict() == {"opts": {"x": 1}}
        assert clone.spec_hash() == spec.with_(seed=9).spec_hash()

    def test_round_trip(self):
        spec = tiny_spec("fig04", params={"clip_chunks": 5})
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_dict_valued_params_round_trip_as_dicts(self):
        params = {"opts": {"x": 1, "nested": [2, 3]}, "plain": [1, 2]}
        spec = ExperimentSpec(experiment="fig04", params=params)
        assert spec.params_dict() == params
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.params_dict() == params

    def test_rejects_bad_backend_and_unknown_fields(self):
        with pytest.raises(ValueError):
            ExperimentSpec(experiment="fig04", backend="gpu")
        with pytest.raises(ValueError):
            ExperimentSpec.from_dict({"experiment": "fig04", "nope": 1})

    def test_scale_presets(self):
        assert {"quick", "full", "tiny"} <= set(scale_names())
        assert resolve_scale("tiny").num_videos == 2
        with pytest.raises(ValueError):
            resolve_scale("galactic")


class TestRegistry:
    def test_catalogue_covers_the_figures(self):
        names = experiment_names()
        for expected in (
            "table1", "fig01", "fig03", "fig04", "fig05", "fig20",
            "fig02-15", "fig16", "fig12c", "appendix-b",
            "fig06", "fig12a", "fig12b", "fig13", "fig14",
            "fig17", "fig18a", "fig18b", "headline",
            "quickstart", "bandwidth-savings", "profile-video",
        ):
            assert expected in names

    def test_unknown_experiment_is_a_clear_error(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            get_experiment("fig99")

    def test_registered_fn_is_the_module_function(self):
        from repro.experiments import abr_eval

        assert get_experiment("fig12a").fn is abr_eval.fig12a_qoe_gain_cdf

    def test_unknown_param_is_rejected_before_running(self):
        with pytest.raises(ValueError, match="does not accept params"):
            run(tiny_spec("fig04", params={"bogus_knob": 1}))

    def test_run_without_store_returns_resultset(self, tmp_path):
        result = run(
            tiny_spec("table1", checkpoint_root=str(tmp_path / "ckpt"))
        )
        assert isinstance(result, ResultSet)
        assert result.experiment == "table1"
        assert result.data["num_videos"] == 16
        assert result.cache_hit is False
        assert result.meta["scale"] == "tiny"
        assert result.meta["seed"] == 13
        assert result.meta["format_version"] == RESULTSET_FORMAT_VERSION

    def test_context_for_uses_spec_fields(self, tmp_path):
        spec = tiny_spec("fig04", seed=21, checkpoint_root=str(tmp_path))
        context = context_for(spec)
        assert context.seed == 21
        assert context.scale.name == "tiny"
        assert context.checkpoint_root == tmp_path


class TestArtifactStore:
    def test_save_load_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = tiny_spec("fig04")
        result = run(spec, store=store)
        loaded = store.load(spec)
        assert loaded is not None
        assert loaded.cache_hit is True
        assert loaded.data_json() == result.data_json()
        assert (store.path_for(spec) / "result.json").exists()

    def test_csv_written_for_row_experiments(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = tiny_spec("table1")
        run(spec, store=store)
        csv_text = (store.path_for(spec) / "result.csv").read_text()
        lines = csv_text.splitlines()
        assert lines[0] == "name,genre,length,source"
        assert len(lines) == 1 + 16  # header + one row per catalogue video

    def test_newer_format_version_is_refused(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = tiny_spec("table1")
        run(spec, store=store)
        path = store.path_for(spec) / "result.json"
        payload = json.loads(path.read_text())
        payload["format_version"] = RESULTSET_FORMAT_VERSION + 1
        # Re-stamp the checksum: the tampered file must pass integrity
        # verification so the version gate itself is what rejects it.
        path.write_text(json.dumps(attach_checksum(payload)))
        with pytest.raises(ValueError, match="format version"):
            store.load(spec)

    def test_entries_and_find(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = tiny_spec("table1")
        run(spec, store=store)
        entries = store.entries()
        assert len(entries) == 1
        assert entries[0]["experiment"] == "table1"
        assert store.find("table1") is not None
        assert store.find(spec.spec_hash()[:8]) is not None
        assert store.find("nonesuch") is None


class TestCellCache:
    def test_round_trip_and_key_check(self, tmp_path):
        cache = CellCache(tmp_path / "cells")
        assert cache.get("grid/BBA/v/t") is None
        cache.put("grid/BBA/v/t", 0.5)
        assert cache.get("grid/BBA/v/t") == 0.5
        assert cache.hits == 1

    def test_truncated_cell_is_a_quarantined_miss_not_an_error(self, tmp_path):
        from repro.faults.log import IntegrityWarning

        cache = CellCache(tmp_path)
        cache.put("k", 1.0)
        cache._path("k").write_text('{"key": "k", "val')  # crash mid-write
        # A torn cell is a miss, but never a *silent* one: it is moved to
        # quarantine with a warning so the corruption leaves evidence.
        with pytest.warns(IntegrityWarning, match="quarantined"):
            assert cache.get("k") is None
        assert cache.fault_log.quarantined == 1
        cache.put("k", 2.0)  # and the cache repairs itself
        assert cache.get("k") == 2.0

    def test_disabled_modes(self, tmp_path):
        disabled = CellCache(None)
        disabled.put("k", 1.0)
        assert disabled.get("k") is None
        no_read = CellCache(tmp_path, read=False)
        no_read.put("k", 1.0)
        assert no_read.get("k") is None
        assert CellCache(tmp_path).get("k") == 1.0


@pytest.fixture
def count_orders(monkeypatch):
    """Counts streaming work orders actually executed by any BatchRunner."""
    counter = {"orders": 0}
    original = BatchRunner.run_orders

    def counting(self, orders):
        counter["orders"] += len(orders)
        return original(self, orders)

    monkeypatch.setattr(BatchRunner, "run_orders", counting)
    return counter


class TestCaching:
    """The acceptance criteria: identical specs are served from cache with
    zero recomputation and bit-identical data; interrupted grids resume
    from finished cells."""

    def test_identical_spec_reuses_artifact_bit_identically(
        self, tmp_path, count_orders
    ):
        store = ArtifactStore(tmp_path / "results")
        spec = tiny_spec(
            "fig12a", checkpoint_root=str(tmp_path / "no-checkpoints")
        )
        first = run(spec, store=store)
        executed_once = count_orders["orders"]
        assert executed_once > 0
        second = run(spec, store=store)
        assert second.cache_hit is True
        assert count_orders["orders"] == executed_once  # no recomputation
        assert second.data_json() == first.data_json()  # bit-identical

    def test_interrupted_grid_resumes_from_finished_cells(
        self, tmp_path, count_orders
    ):
        store = ArtifactStore(tmp_path / "results")
        spec = tiny_spec(
            "fig12a", checkpoint_root=str(tmp_path / "no-checkpoints")
        )
        first = run(spec, store=store)
        executed_once = count_orders["orders"]
        # Simulate a crash after the grid cells landed but before the
        # result artifact was written.  (first.spec, not spec: run()
        # normalises the unused checkpoint_root out of the cache identity.)
        (store.path_for(first.spec) / "result.json").unlink()
        resumed = run(spec, store=store)
        assert resumed.cache_hit is False
        assert count_orders["orders"] == executed_once  # cells, not sessions
        assert resumed.data_json() == first.data_json()

    def test_grid_figures_share_cells(self, tmp_path, count_orders):
        store = ArtifactStore(tmp_path / "results")
        kwargs = dict(checkpoint_root=str(tmp_path / "no-checkpoints"))
        run(tiny_spec("fig12a", **kwargs), store=store)
        executed_once = count_orders["orders"]
        run(tiny_spec("headline", **kwargs), store=store)
        assert count_orders["orders"] == executed_once  # same grid, reused

    def test_unobservable_fields_do_not_fragment_the_cache(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        run(tiny_spec("table1"), store=store)
        # table1 can observe neither checkpoints nor include_pensieve, so
        # specs differing only in those fields hit the same artifact.
        decorated = tiny_spec(
            "table1",
            checkpoint_root=str(tmp_path / "ck"),
            include_pensieve=False,
        )
        assert run(decorated, store=store).cache_hit is True

    def test_include_pensieve_spellings_share_one_artifact(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        run(tiny_spec("fig12a"), store=store)
        # Default, the explicit flag, and a --set param override all
        # normalise to the same cache identity.
        via_flag = tiny_spec("fig12a", include_pensieve=False)
        assert run(via_flag, store=store).cache_hit is True
        via_param = tiny_spec(
            "fig12a", params={"include_pensieve": False}
        )
        assert run(via_param, store=store).cache_hit is True

    def test_force_recomputes_but_matches(self, tmp_path, count_orders):
        store = ArtifactStore(tmp_path / "results")
        spec = tiny_spec(
            "fig12a", checkpoint_root=str(tmp_path / "no-checkpoints")
        )
        first = run(spec, store=store)
        executed_once = count_orders["orders"]
        forced = run(spec, store=store, force=True)
        assert forced.cache_hit is False
        assert count_orders["orders"] == 2 * executed_once
        assert forced.data_json() == first.data_json()


class TestCheckpointAwareCaching:
    """Cache identity must track checkpoint *contents*, and cached cells
    must keep even policy loading lazy."""

    def _seed_checkpoints(self, root):
        store = CheckpointStore(root)
        store.save(PensieveABR(config=PensieveConfig(seed=61)), "pensieve-best")
        store.save(make_sensei_pensieve(seed=62), "sensei-pensieve-best")
        return store

    def test_retraining_invalidates_cached_results(
        self, tmp_path, count_orders
    ):
        root = tmp_path / "ckpt"
        self._seed_checkpoints(root)
        art_store = ArtifactStore(tmp_path / "results")
        spec = tiny_spec(
            "fig12a", include_pensieve=True, checkpoint_root=str(root)
        )
        first = run(spec, store=art_store)
        executed_once = count_orders["orders"]
        assert first.spec.checkpoint_fingerprint is not None
        # Identical spec + unchanged checkpoints: pure cache hit.
        again = run(spec, store=art_store)
        assert again.cache_hit is True
        assert count_orders["orders"] == executed_once
        # "Retraining" (overwriting the checkpoints bumps their save
        # indices) must invalidate the artifact — but only the RL cells
        # recompute; the BBA/Fugu/SENSEI cells are still shared.
        self._seed_checkpoints(root)
        rerun = run(spec, store=art_store)
        assert rerun.cache_hit is False
        assert (
            rerun.spec.checkpoint_fingerprint
            != first.spec.checkpoint_fingerprint
        )
        rl_cells = 2 * 2 * 3  # 2 RL algorithms x (2 videos x 3 traces)
        assert count_orders["orders"] == executed_once + rl_cells

    def test_fully_cached_grid_never_loads_policies(
        self, tmp_path, count_orders, monkeypatch
    ):
        root = tmp_path / "ckpt"
        self._seed_checkpoints(root)
        art_store = ArtifactStore(tmp_path / "results")
        spec = tiny_spec(
            "fig12a", include_pensieve=True, checkpoint_root=str(root)
        )
        first = run(spec, store=art_store)
        executed_once = count_orders["orders"]
        # Crash after the cells landed but before the artifact was written.
        (art_store.path_for(first.spec) / "result.json").unlink()
        loads = {"count": 0}
        original_load = CheckpointStore.load

        def counting_load(self, name):
            loads["count"] += 1
            return original_load(self, name)

        monkeypatch.setattr(CheckpointStore, "load", counting_load)
        resumed = run(spec, store=art_store)
        assert resumed.cache_hit is False
        assert count_orders["orders"] == executed_once  # cells reused
        assert loads["count"] == 0  # lazy: no policy materialised
        assert resumed.data_json() == first.data_json()


class TestDeterminism:
    """Satellite: identical specs are bit-identical on both backends."""

    def test_seed_changes_results(self, tmp_path):
        kwargs = dict(checkpoint_root=str(tmp_path / "no-checkpoints"))
        a = run(tiny_spec("fig12a", seed=13, **kwargs))
        b = run(tiny_spec("fig12a", seed=14, **kwargs))
        assert a.data_json() != b.data_json()

    @pytest.mark.slow
    def test_serial_and_process_backends_are_bit_identical(self, tmp_path):
        kwargs = dict(checkpoint_root=str(tmp_path / "no-checkpoints"))
        serial = run(tiny_spec("fig12a", backend="serial", **kwargs))
        pooled = run(
            tiny_spec("fig12a", backend="process", max_workers=2, **kwargs)
        )
        assert serial.data_json() == pooled.data_json()
        assert serial.spec_hash == pooled.spec_hash


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12a" in out
        assert "quickstart" in out

    def test_list_json(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "fig12a" for entry in payload)

    def test_run_and_cache_hit_and_report(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        argv = ["run", "table1", "--scale", "tiny", "--seed", "3",
                "--results", results]
        assert cli_main(argv) == 0
        assert "computed" in capsys.readouterr().out
        assert cli_main(argv) == 0
        assert "cached" in capsys.readouterr().out
        assert cli_main(["report", "--results", results]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert cli_main(["report", "table1", "--results", results]) == 0
        assert "experiment: table1" in capsys.readouterr().out

    def test_run_param_override(self, tmp_path, capsys):
        argv = ["run", "fig04", "--scale", "tiny",
                "--results", str(tmp_path / "results"),
                "--set", "clip_chunks=4"]
        assert cli_main(argv) == 0
        store = ArtifactStore(tmp_path / "results")
        stored = store.find("fig04")
        assert stored is not None
        assert stored.spec.params_dict() == {"clip_chunks": 4}
        assert len(stored.data["positions_s"]) == 4

    def test_run_no_save_writes_nothing(self, tmp_path, capsys):
        argv = ["run", "table1", "--scale", "tiny", "--no-save",
                "--results", str(tmp_path / "results")]
        assert cli_main(argv) == 0
        assert not (tmp_path / "results").exists()

    def test_report_missing_target_fails(self, tmp_path, capsys):
        code = cli_main(
            ["report", "nonesuch", "--results", str(tmp_path / "results")]
        )
        assert code == 1

    def test_unknown_experiment_fails_fast(self, tmp_path):
        with pytest.raises(ValueError, match="unknown experiment"):
            cli_main(["run", "fig99", "--results", str(tmp_path / "r")])
