"""Chaos + integrity suite for the fault-tolerant execution layer.

Three layers, mirroring ``docs/ROBUSTNESS.md``:

* **unit** — the fault vocabulary itself (:class:`FaultLog` accounting,
  deterministic :class:`FaultPlan` generation, checksum/atomic-write/
  quarantine primitives);
* **integration** — stores and runners under specific injected faults:
  corrupt cells/artifacts/checkpoints are quarantined and recomputed (or
  fail loudly where recomputation is impossible), killed workers and
  timed-out shards are retried to *bit-identical* results;
* **property** — hypothesis draws seeds, :meth:`FaultPlan.random` expands
  them into chaos scenarios, and every scenario must either converge to
  the fault-free golden results or fail loudly with a quarantine record.
  Silently-wrong outcomes are the only forbidden ending.

The real-SIGKILL tests spawn actual pool workers and are marked ``slow``
+ ``chaos`` (CI runs them in the ``chaos-smoke`` job; ``make chaos``
locally).
"""

from __future__ import annotations

import json
import warnings
from unittest import mock

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.engine.runner import BatchRunner, orders_for_grid
from repro.experiments.results import ArtifactStore, CellCache, ResultSet
from repro.experiments.spec import ExperimentSpec
from repro.faults import (
    COUNTER_FIELDS,
    FaultLog,
    FaultPlan,
    FaultSpec,
    IntegrityWarning,
    SHARD_FAULT_KINDS,
    STORE_FAULT_KINDS,
    ShardRecoveryWarning,
    active_injector,
    attach_checksum,
    atomic_write_text,
    inject,
    merge_counter_dicts,
    payload_checksum,
    quarantine_file,
    quarantine_records,
    verify_checksum,
)
from repro.network.bank import TraceBank
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.video import SourceVideo


def _encode(video_id: str, genre: str, duration_s: float, seed: int):
    source = SourceVideo.synthesize(
        video_id, genre, duration_s=duration_s, chunk_duration_s=4.0,
        seed=seed,
    )
    return SyntheticEncoder(seed=seed + 10).encode(source, DEFAULT_LADDER)


@pytest.fixture(scope="module")
def chaos_orders():
    """A small (ABR x video x trace) grid: enough orders for real shards."""
    videos = [
        _encode("ch-sports", "sports", 48.0, 61),
        _encode("ch-nature", "nature", 64.0, 62),
    ]
    traces = TraceBank(num_traces=3, duration_s=300.0, seed=71).traces()
    keyed = orders_for_grid([BufferBasedABR(), FuguABR()], videos, traces)
    return [order for _, order in keyed]


@pytest.fixture(scope="module")
def golden(chaos_orders):
    """Fault-free reference results every chaos run must converge to."""
    return BatchRunner(backend="serial").run_orders(chaos_orders)


def assert_results_identical(left, right):
    """Bitwise identity of two StreamResults (the salvage contract)."""
    assert np.array_equal(left.rendered.levels, right.rendered.levels)
    assert np.array_equal(left.rendered.stalls_s, right.rendered.stalls_s)
    assert left.rendered.startup_delay_s == right.rendered.startup_delay_s
    assert left.total_bytes == right.total_bytes
    assert left.session_duration_s == right.session_duration_s
    assert left.abr_name == right.abr_name
    assert left.trace_name == right.trace_name


def assert_all_identical(golden, results):
    assert len(results) == len(golden)
    for left, right in zip(golden, results):
        assert_results_identical(left, right)


# =============================================================== unit layer


class TestFaultLog:
    def test_counters_and_any_faults(self):
        log = FaultLog()
        assert not log.any_faults()
        log.retries += 2
        log.wall_clock_lost_s += 0.5
        log.record("lost shard 3")
        assert log.any_faults()
        counters = log.counters()
        assert counters["retries"] == 2
        assert counters["wall_clock_lost_s"] == 0.5
        assert set(COUNTER_FIELDS) < set(counters)
        assert log.as_dict()["events"] == ["lost shard 3"]

    def test_snapshot_since_isolates_a_run(self):
        log = FaultLog()
        log.retries = 5
        before = log.snapshot()
        log.retries += 1
        log.timeouts += 2
        delta = log.since(before)
        assert delta["retries"] == 1
        assert delta["timeouts"] == 2
        assert delta["pool_rebuilds"] == 0

    def test_merge_counter_dicts(self):
        merged = merge_counter_dicts(
            {"retries": 1, "wall_clock_lost_s": 0.25},
            {"retries": 2, "quarantined": 1},
        )
        assert merged["retries"] == 3
        assert merged["quarantined"] == 1
        assert merged["wall_clock_lost_s"] == 0.25


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(kind="meteor_strike")
        with pytest.raises(ValueError, match="corrupt mode"):
            FaultSpec(kind="corrupt_artifact", mode="shred")
        with pytest.raises(ValueError, match="at_pickle"):
            FaultSpec(kind="broken_pickle", at_pickle=0)

    def test_random_is_deterministic(self):
        assert FaultPlan.random(seed=42) == FaultPlan.random(seed=42)
        assert FaultPlan.random(seed=42) != FaultPlan.random(seed=43)

    def test_round_trips_through_dict(self):
        plan = FaultPlan.random(seed=7)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        # and through JSON, so chaos fixtures can live in files
        assert FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict()))) == plan

    @given(st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_every_seed_yields_a_valid_plan(self, seed):
        plan = FaultPlan.random(seed=seed)
        assert 1 <= len(plan.faults) <= 3
        assert all(
            spec.kind in SHARD_FAULT_KINDS + STORE_FAULT_KINDS
            for spec in plan.faults
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_injector_refuses_nested_activation(self):
        with inject(FaultPlan(faults=())):
            with pytest.raises(RuntimeError, match="already active"):
                with inject(FaultPlan(faults=())):
                    pass
        assert active_injector() is None


class TestIntegrityPrimitives:
    def test_checksum_round_trip_and_tamper_detection(self):
        payload = attach_checksum({"a": 1, "b": [1, 2, 3]})
        assert verify_checksum(payload)
        tampered = dict(payload)
        tampered["a"] = 2
        assert not verify_checksum(tampered)
        # pre-integrity payloads (no checksum) stay readable
        assert verify_checksum({"a": 1})

    def test_checksum_is_key_order_independent(self):
        assert payload_checksum({"a": 1, "b": 2}) == payload_checksum(
            {"b": 2, "a": 1}
        )

    def test_atomic_write_leaves_no_scratch(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "payload")
        assert target.read_text() == "payload"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_quarantine_moves_file_and_records_reason(self, tmp_path):
        victim = tmp_path / "data.json"
        victim.write_text("{torn")
        log = FaultLog()
        with pytest.warns(IntegrityWarning, match="quarantined"):
            moved = quarantine_file(
                victim, tmp_path / "quarantine", "checksum mismatch",
                fault_log=log,
            )
        assert moved is not None and moved.exists()
        assert not victim.exists()
        assert log.quarantined == 1
        records = quarantine_records(tmp_path / "quarantine")
        assert len(records) == 1
        assert records[0]["reason"] == "checksum mismatch"
        assert records[0]["original_path"] == str(victim)


# ======================================================== store integration


class TestCellCacheIntegrity:
    def test_round_trip(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("grid/a/b", 1.25)
        assert cache.get("grid/a/b") == 1.25
        assert cache.hits == 1

    def test_corrupt_cell_is_quarantined_not_silent(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("grid/a/b", 1.25)
        path = cache._path("grid/a/b")
        path.write_text("{torn")
        with pytest.warns(IntegrityWarning, match="quarantined"):
            assert cache.get("grid/a/b") is None
        assert cache.misses == 1
        assert cache.fault_log.quarantined == 1
        assert not path.exists()
        assert len(quarantine_records(cache.quarantine_root)) == 1
        # the slot is reusable: a recompute repairs the cache
        cache.put("grid/a/b", 2.5)
        assert cache.get("grid/a/b") == 2.5

    def test_bitflipped_cell_fails_checksum(self, tmp_path):
        """A flip that keeps the JSON parseable is caught by the checksum."""
        cache = CellCache(tmp_path)
        cache.put("grid/a/b", 1000)
        path = cache._path("grid/a/b")
        payload = json.loads(path.read_text())
        payload["value"] = 1001  # parses fine; only the checksum knows
        path.write_text(json.dumps(payload, sort_keys=True))
        with pytest.warns(IntegrityWarning, match="checksum mismatch"):
            assert cache.get("grid/a/b") is None


def _store_and_result(tmp_path, seed=13):
    store = ArtifactStore(tmp_path)
    spec = ExperimentSpec(experiment="chaos-store", scale="tiny", seed=seed)
    result = ResultSet(
        experiment="chaos-store", spec=spec,
        data={"value": 42.5, "curve": [1, 2, 3]},
    )
    return store, spec, result


class TestArtifactStoreIntegrity:
    def test_save_is_checksummed_and_atomic(self, tmp_path):
        store, spec, result = _store_and_result(tmp_path)
        directory = store.save(result)
        payload = json.loads((directory / "result.json").read_text())
        assert verify_checksum(payload)
        assert payload["checksum"].startswith("sha256:")
        assert list(directory.glob("*.tmp")) == []
        loaded = store.load(spec)
        assert loaded is not None and loaded.data == result.data

    def test_corrupt_artifact_is_quarantined_and_reported_absent(
        self, tmp_path
    ):
        store, spec, result = _store_and_result(tmp_path)
        directory = store.save(result)
        (directory / "result.json").write_text("{torn")
        with pytest.warns(IntegrityWarning, match="quarantined"):
            assert store.load(spec) is None  # caller recomputes
        assert store.fault_log.quarantined == 1
        assert len(quarantine_records(store.quarantine_root)) == 1
        # save/load again: the quarantine repaired the slot
        store.save(result)
        assert store.load(spec) is not None

    def test_entries_and_find_skip_corrupt_artifacts(self, tmp_path):
        store, _, result = _store_and_result(tmp_path)
        store.save(result)
        other_spec = ExperimentSpec(
            experiment="chaos-store", scale="tiny", seed=14
        )
        other = ResultSet(
            experiment="chaos-store", spec=other_spec, data={"value": 1}
        )
        bad_dir = store.save(other)
        (bad_dir / "result.json").write_text("{torn")
        with pytest.warns(IntegrityWarning):
            entries = store.entries()
        assert len(entries) == 1  # the healthy one; no crash, no silence
        # entries() already quarantined the corrupt file, so find() now
        # sees only the healthy artifact — and picks it, not a crash.
        found = store.find("chaos-store")
        assert found is not None and found.data["value"] == 42.5

    def test_injected_bitflip_is_caught_on_load(self, tmp_path):
        """corrupt_artifact via the injector: write 'succeeds', load must
        quarantine — the write path is the hook, the read path the net."""
        store, spec, result = _store_and_result(tmp_path)
        plan = FaultPlan(faults=(
            FaultSpec(kind="corrupt_artifact", path_glob="result.json",
                      mode="bitflip"),
        ))
        with inject(plan) as injector:
            store.save(result)
        assert injector.fired == ["corrupt_artifact[bitflip]@result.json"]
        with pytest.warns(IntegrityWarning):
            assert store.load(spec) is None
        assert store.fault_log.quarantined == 1


class TestCheckpointStoreIntegrity:
    @pytest.fixture()
    def policy(self):
        from repro.abr.pensieve import PensieveABR, PensieveConfig

        return PensieveABR(config=PensieveConfig(seed=5))

    def test_save_load_round_trip_is_verified(self, tmp_path, policy):
        from repro.training.checkpoint import CheckpointStore

        store = CheckpointStore(tmp_path)
        store.save(policy, "agent")
        metadata = store.metadata("agent")
        assert metadata["state_checksum"].startswith("sha256:")
        assert verify_checksum(metadata)
        reloaded = store.load(store.latest())
        assert reloaded.trained_episodes == policy.trained_episodes

    def test_corrupt_state_quarantines_and_fails_loudly(
        self, tmp_path, policy
    ):
        from repro.training.checkpoint import CheckpointStore

        store = CheckpointStore(tmp_path)
        store.save(policy, "agent")
        state_path = tmp_path / "agent" / "state.npz"
        data = bytearray(state_path.read_bytes())
        data[len(data) // 2] ^= 0x01
        state_path.write_bytes(bytes(data))
        with pytest.warns(IntegrityWarning):
            with pytest.raises(ValueError, match="state verification"):
                store.load("agent")
        assert store.fault_log.quarantined == 1
        assert len(quarantine_records(store.quarantine_root)) == 1

    def test_corrupt_metadata_quarantines_and_fails_loudly(
        self, tmp_path, policy
    ):
        from repro.training.checkpoint import CheckpointStore

        store = CheckpointStore(tmp_path)
        store.save(policy, "agent")
        (tmp_path / "agent" / "metadata.json").write_text("{torn")
        with pytest.warns(IntegrityWarning):
            with pytest.raises(ValueError, match="unreadable"):
                store.load("agent")

    def test_injected_truncation_on_save_is_terminal_on_load(
        self, tmp_path, policy
    ):
        from repro.training.checkpoint import CheckpointStore

        store = CheckpointStore(tmp_path)
        plan = FaultPlan(faults=(
            FaultSpec(kind="corrupt_artifact", path_glob="state.npz",
                      mode="truncate"),
        ))
        with inject(plan) as injector:
            store.save(policy, "agent")
        assert injector.fired
        with pytest.warns(IntegrityWarning):
            with pytest.raises(ValueError):
                store.load("agent")


# ======================================================= runner integration


class TestLockstepRecovery:
    def test_raise_in_shard_recovers_bit_identically(
        self, chaos_orders, golden
    ):
        runner = BatchRunner(backend="lockstep")
        plan = FaultPlan(faults=(FaultSpec(kind="raise_in_shard"),))
        with inject(plan) as injector:
            with pytest.warns(ShardRecoveryWarning, match="serial"):
                results = runner.run_orders(chaos_orders)
        assert injector.exhausted()
        assert_all_identical(golden, results)
        assert runner.fault_log.serial_fallbacks >= 1
        assert runner.fault_log.worker_crashes >= 1

    def test_kill_worker_degrades_to_crash_in_process(
        self, chaos_orders, golden
    ):
        """In-process, kill_worker must not SIGKILL the test run: it
        degrades to a simulated crash and takes the same recovery path."""
        runner = BatchRunner(backend="lockstep")
        plan = FaultPlan(faults=(FaultSpec(kind="kill_worker"),))
        with inject(plan):
            with pytest.warns(ShardRecoveryWarning):
                results = runner.run_orders(chaos_orders)
        assert_all_identical(golden, results)


class TestRunnerLifecycle:
    def test_close_is_idempotent(self):
        runner = BatchRunner(backend="serial")
        runner.close()
        runner.close()  # second close must be a no-op, not an error

    def test_close_logs_teardown_failure_and_drops_pool(self):
        runner = BatchRunner(backend="process", persistent=True)
        broken = mock.Mock()
        broken.shutdown.side_effect = OSError("worker already dead")
        runner._pool = broken
        with pytest.warns(RuntimeWarning, match="dropped anyway"):
            runner.close()
        assert runner._pool is None
        runner.close()  # idempotent even after a failed teardown

    def test_invalid_recovery_knobs_are_rejected(self):
        with pytest.raises(ValueError, match="max_shard_retries"):
            BatchRunner(max_shard_retries=-1)
        with pytest.raises(ValueError, match="shard_timeout_s"):
            BatchRunner(shard_timeout_s=0.0)


@pytest.mark.slow
@pytest.mark.chaos
class TestProcessPoolChaos:
    """Real pools, real worker deaths.  The acceptance gate: every salvage
    must be bit-identical to the fault-free golden master."""

    def _process_runner(self, **knobs):
        return BatchRunner(backend="process", max_workers=2,
                           retry_backoff_s=0.01, **knobs)

    def test_sigkilled_worker_mid_grid_salvages_bit_identically(
        self, chaos_orders, golden
    ):
        plan = FaultPlan(faults=(FaultSpec(kind="kill_worker", shard=0),))
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=4):
            runner = self._process_runner()
            with inject(plan) as injector:
                with pytest.warns(ShardRecoveryWarning, match="worker died"):
                    results = runner.run_orders(chaos_orders)
        assert injector.fired == ["kill_worker@shard0"]
        assert_all_identical(golden, results)
        assert runner.fault_log.pool_rebuilds >= 1
        assert runner.fault_log.retries >= 1
        assert runner.fault_log.worker_crashes >= 1
        assert runner.fault_log.wall_clock_lost_s > 0.0

    def test_timed_out_shard_is_retried_bit_identically(
        self, chaos_orders, golden
    ):
        plan = FaultPlan(faults=(
            FaultSpec(kind="delay_shard", shard=0, delay_s=5.0),
        ))
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=4):
            runner = self._process_runner(shard_timeout_s=1.0)
            with inject(plan):
                with pytest.warns(ShardRecoveryWarning, match="exceeded"):
                    results = runner.run_orders(chaos_orders)
        assert_all_identical(golden, results)
        assert runner.fault_log.timeouts >= 1
        assert runner.fault_log.retries >= 1

    def test_unpicklable_dispatch_falls_back_in_process(
        self, chaos_orders, golden
    ):
        plan = FaultPlan(faults=(FaultSpec(kind="broken_pickle"),))
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=4):
            runner = self._process_runner()
            with inject(plan):
                with pytest.warns(ShardRecoveryWarning, match="pickle"):
                    results = runner.run_orders(chaos_orders)
        assert_all_identical(golden, results)
        assert runner.fault_log.pickle_failures >= 1

    def test_repeated_crashes_exhaust_retries_into_serial_fallback(
        self, chaos_orders, golden
    ):
        """Every shard crash-looping forces the in-process fallback: the
        run still completes, bit-identically, and says how."""
        crashes = FaultSpec(kind="raise_in_shard", times=100)
        plan = FaultPlan(faults=(crashes,))
        with mock.patch("repro.engine.runner.os.cpu_count", return_value=4):
            runner = self._process_runner(max_shard_retries=1)
            with inject(plan):
                with pytest.warns(ShardRecoveryWarning):
                    results = runner.run_orders(chaos_orders)
        assert_all_identical(golden, results)
        assert runner.fault_log.serial_fallbacks >= 1
        assert runner.fault_log.retries >= 1


# ========================================================== property layer


class TestChaosProperties:
    """Hypothesis over random fault plans: recover bit-identically or fail
    loudly — never silently wrong (the ISSUE's acceptance criterion)."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_random_shard_faults_converge_to_golden(
        self, chaos_orders, golden, seed
    ):
        plan = FaultPlan.random(
            seed=seed, kinds=SHARD_FAULT_KINDS, num_shards=4,
            max_delay_s=0.02,
        )
        runner = BatchRunner(backend="lockstep")
        with warnings.catch_warnings():
            # Recovery warnings are expected here; the suite-wide
            # promotion to error (pytest.ini) is for *unexpected* ones.
            warnings.simplefilter("ignore", ShardRecoveryWarning)
            with inject(plan) as injector:
                results = runner.run_orders(chaos_orders)
        assert_all_identical(golden, results)
        if any("raise_in_shard" in note or "kill_worker" in note
               for note in injector.fired):
            assert runner.fault_log.any_faults()

    @given(seed=st.integers(0, 10_000))
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_store_faults_never_serve_wrong_data(self, tmp_path, seed):
        store, spec, result = _store_and_result(
            tmp_path / f"s{seed}", seed=13
        )
        plan = FaultPlan.random(seed=seed, kinds=("corrupt_artifact",))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IntegrityWarning)
            with inject(plan):
                store.save(result)
            loaded = store.load(spec)
        if loaded is None:
            # loud path: the corruption was caught and quarantined
            assert store.fault_log.quarantined >= 1
        else:
            # recovered path: the data is exactly right, not almost right
            assert loaded.data == result.data
