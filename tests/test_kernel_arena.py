"""Differential tests for the arena-compiled planner kernel.

Three layers of evidence that the arena rebuild of
``evaluate_candidates_batch`` changed the *speed* and nothing else:

* **Property (hypothesis):** on randomly drawn batches — any session
  count, scenario count, ladder size, horizon, ``max_step`` mask,
  non-uniform weights, multi-stall options — the arena float64 kernel is
  *bitwise* identical to the retained ``legacy`` kernel (the pre-arena
  implementation, kept precisely as this oracle).
* **Float32 vs float64:** over inputs derived from the golden-master
  content (the canonical ``tests/golden/`` video, same synthesis seeds),
  the opt-in float32 fast path matches float64 scores within tolerance
  and picks the same argmax level everywhere.
* **Config plumbing:** the process default is ``("arena", "float64")``
  — the fast-but-inexact float32 path can never turn itself on — and
  the derived caches (switch terms, arenas) are LRU-bounded with
  counted evictions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr import planner
from repro.abr.planner import (
    clear_plan_cache,
    enumerate_level_sequences,
    evaluate_candidates_batch,
    kernel_block_sessions,
    kernel_config,
    set_kernel_dtype,
    set_kernel_impl,
)
from repro.qoe.ksqi import KSQIModel
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.video import SourceVideo

RESULT_FIELDS = (
    "best_level", "best_stall_s", "best_score", "expected_rebuffer_s"
)


def _batch_inputs(
    seed: int,
    num_sessions: int,
    num_scenarios: int,
    levels: int,
    horizon: int,
    max_step,
    weighted: bool,
    num_stalls: int,
    need_rebuffer: bool,
):
    """One randomly drawn but fully deterministic kernel call."""
    rng = np.random.default_rng(seed)
    candidates = enumerate_level_sequences(levels, horizon, max_step=max_step)
    sizes = rng.uniform(1e5, 5e6, size=(num_sessions, horizon, levels))
    sizes.sort(axis=2)
    quality = rng.uniform(5, 98, size=(num_sessions, horizon, levels))
    quality.sort(axis=2)
    weights = (
        rng.uniform(0.25, 2.0, size=(num_sessions, horizon))
        if weighted else np.ones((num_sessions, horizon))
    )
    last_level = rng.integers(-1, levels, size=num_sessions)
    tputs = rng.uniform(0.2, 12.0, size=(num_sessions, num_scenarios))
    probs = rng.uniform(0.05, 1.0, size=(num_sessions, num_scenarios))
    probs /= probs.sum(axis=1, keepdims=True)
    # An arbitrary-but-valid mask: the engine's max_step feasibility test
    # plus random extra knockouts, never masking a whole row.
    step = max_step if max_step is not None else levels
    mask = (last_level[:, None] < 0) | (
        np.abs(candidates[None, :, 0] - last_level[:, None]) <= step
    )
    knockout = rng.random(mask.shape) < 0.2
    knockout[np.arange(num_sessions), mask.argmax(axis=1)] = False
    mask = mask & ~knockout
    bitrates = np.sort(rng.uniform(200, 6000, size=levels))
    return dict(
        candidates=candidates,
        sizes=sizes,
        quality=quality,
        weights=weights,
        buffer_s=rng.uniform(0.0, 24.0, size=num_sessions),
        last_level=last_level,
        scenario_tputs=tputs,
        scenario_probs=probs,
        bitrates_kbps=bitrates,
        quality_model=KSQIModel(),
        stall_options_s=tuple(np.linspace(0.0, 2.0, num_stalls)),
        chunk_duration_s=4.0,
        buffer_capacity_s=30.0,
        candidate_mask=mask,
        need_expected_rebuffer=need_rebuffer,
        weights_uniform=not weighted,
    )


def _assert_bitwise_equal(a, b, context):
    for field in RESULT_FIELDS:
        assert np.array_equal(
            np.asarray(getattr(a, field)), np.asarray(getattr(b, field))
        ), (context, field)
    assert a.num_candidates == b.num_candidates, context


class TestArenaMatchesLegacyBitwise:
    """Arena float64 is bit-identical to the pre-arena kernel."""

    @given(
        seed=st.integers(0, 2**31),
        num_sessions=st.integers(1, 14),
        num_scenarios=st.integers(1, 6),
        levels=st.integers(3, 6),
        max_step=st.sampled_from([None, 1, 2]),
        weighted=st.booleans(),
        num_stalls=st.integers(1, 3),
        need_rebuffer=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_batches(
        self, seed, num_sessions, num_scenarios, levels, max_step,
        weighted, num_stalls, need_rebuffer,
    ):
        kwargs = _batch_inputs(
            seed, num_sessions, num_scenarios, levels, horizon=4,
            max_step=max_step, weighted=weighted, num_stalls=num_stalls,
            need_rebuffer=need_rebuffer,
        )
        legacy = evaluate_candidates_batch(**kwargs, kernel_impl="legacy")
        arena = evaluate_candidates_batch(
            **kwargs, kernel_impl="arena", kernel_dtype="float64"
        )
        _assert_bitwise_equal(arena, legacy, (seed, num_sessions))

    @given(seed=st.integers(0, 2**31), horizon=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_random_horizons(self, seed, horizon):
        kwargs = _batch_inputs(
            seed, num_sessions=5, num_scenarios=3, levels=4,
            horizon=horizon, max_step=2, weighted=True, num_stalls=2,
            need_rebuffer=True,
        )
        legacy = evaluate_candidates_batch(**kwargs, kernel_impl="legacy")
        arena = evaluate_candidates_batch(**kwargs, kernel_impl="arena")
        _assert_bitwise_equal(arena, legacy, (seed, horizon))

    def test_padded_mixed_ladder_width(self):
        """Sizes/quality wider than the ladder (mixed-ladder shards)."""
        kwargs = _batch_inputs(
            3, num_sessions=4, num_scenarios=2, levels=4, horizon=4,
            max_step=2, weighted=False, num_stalls=1, need_rebuffer=False,
        )
        pad = np.zeros((4, 4, 2))
        kwargs["sizes"] = np.concatenate([kwargs["sizes"], pad + 1.0], axis=2)
        kwargs["quality"] = np.concatenate([kwargs["quality"], pad], axis=2)
        legacy = evaluate_candidates_batch(**kwargs, kernel_impl="legacy")
        arena = evaluate_candidates_batch(**kwargs, kernel_impl="arena")
        _assert_bitwise_equal(arena, legacy, "padded")


def _golden_grid_inputs():
    """Kernel inputs derived from the golden-master canonical content.

    Same synthesis seeds as ``tests/test_golden.py``: sliding horizon
    windows over the golden video's per-chunk size/quality tables become
    the session batch, crossed with a deterministic buffer/throughput
    grid.
    """
    source = SourceVideo.synthesize(
        "golden-sports", "sports", duration_s=64.0, chunk_duration_s=4.0,
        seed=1207,
    )
    video = SyntheticEncoder(seed=1208).encode(source, DEFAULT_LADDER)
    horizon = 4
    sizes = np.stack([
        np.stack([video.chunks[i + k].sizes_bytes for k in range(horizon)])
        for i in range(video.num_chunks - horizon)
    ])
    quality = np.stack([
        np.stack([video.chunks[i + k].quality for k in range(horizon)])
        for i in range(video.num_chunks - horizon)
    ])
    num_sessions = sizes.shape[0]
    levels = sizes.shape[2]
    candidates = enumerate_level_sequences(levels, horizon, max_step=2)
    rng = np.random.default_rng(1209)
    last_level = rng.integers(-1, levels, size=num_sessions)
    tputs = np.stack([
        np.linspace(0.4, 9.0, 5) * (0.6 + 0.1 * (i % 5))
        for i in range(num_sessions)
    ])
    probs = np.full((num_sessions, 5), 0.2)
    mask = (last_level[:, None] < 0) | (
        np.abs(candidates[None, :, 0] - last_level[:, None]) <= 2
    )
    return dict(
        candidates=candidates,
        sizes=sizes,
        quality=quality,
        weights=rng.uniform(0.5, 1.5, size=(num_sessions, horizon)),
        buffer_s=np.linspace(0.5, 22.0, num_sessions),
        last_level=last_level,
        scenario_tputs=tputs,
        scenario_probs=probs,
        bitrates_kbps=np.asarray(DEFAULT_LADDER.bitrates_kbps, dtype=float),
        quality_model=KSQIModel(),
        stall_options_s=(0.0, 0.5, 1.0),
        chunk_duration_s=4.0,
        buffer_capacity_s=30.0,
        candidate_mask=mask,
        need_expected_rebuffer=True,
        weights_uniform=False,
    )


class TestFloat32FastPath:
    """The opt-in float32 path tracks float64 on golden-derived inputs."""

    def test_tolerance_and_argmax_agreement(self):
        kwargs = _golden_grid_inputs()
        f64 = evaluate_candidates_batch(
            **kwargs, kernel_impl="arena", kernel_dtype="float64"
        )
        f32 = evaluate_candidates_batch(
            **kwargs, kernel_impl="arena", kernel_dtype="float32"
        )
        np.testing.assert_allclose(
            f32.best_score, f64.best_score, rtol=1e-3, atol=1e-3
        )
        np.testing.assert_allclose(
            f32.expected_rebuffer_s, f64.expected_rebuffer_s, atol=5e-3
        )
        agree = np.mean(f32.best_level == f64.best_level)
        assert agree == 1.0, f"argmax agreement {agree:.3f} < 1.0"
        assert np.array_equal(f32.best_stall_s, f64.best_stall_s)

    def test_f32_outputs_are_float64(self):
        """Downstream consumers never see float32 leak out of the kernel."""
        kwargs = _golden_grid_inputs()
        result = evaluate_candidates_batch(
            **kwargs, kernel_impl="arena", kernel_dtype="float32"
        )
        assert result.best_score.dtype == np.float64
        assert result.expected_rebuffer_s.dtype == np.float64


class TestKernelConfig:
    """Process-wide defaults, env plumbing and per-call overrides."""

    def test_default_is_arena_float64(self):
        assert kernel_config() == ("arena", "float64")

    def test_f32_requires_explicit_opt_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_F32", raising=False)
        assert planner._dtype_from_env() == "float64"
        for flag in ("1", "true", "YES", "on"):
            monkeypatch.setenv("REPRO_KERNEL_F32", flag)
            assert planner._dtype_from_env() == "float32"
        monkeypatch.setenv("REPRO_KERNEL_F32", "0")
        assert planner._dtype_from_env() == "float64"

    def test_set_and_restore(self):
        try:
            assert set_kernel_dtype("float32") == "float32"
            assert set_kernel_impl("legacy") == "legacy"
            assert kernel_config() == ("legacy", "float32")
        finally:
            set_kernel_dtype(None)
            set_kernel_impl(None)
        assert kernel_config() == ("arena", "float64")

    def test_rejects_unknown_values(self):
        with pytest.raises(Exception):
            set_kernel_impl("simd")
        with pytest.raises(Exception):
            evaluate_candidates_batch(
                **_batch_inputs(1, 2, 1, 4, 4, 1, False, 1, False),
                kernel_dtype="float16",
            )


class TestDerivedCacheBounds:
    """Switch-term and arena caches are LRU-bounded with counted evictions."""

    def test_eviction_counters(self, monkeypatch):
        monkeypatch.setattr(planner, "_DERIVED_CACHE_CAP", 4)
        clear_plan_cache()
        before = dict(planner._CACHE_EVICTIONS)
        candidates = enumerate_level_sequences(4, 3, max_step=1)
        assert not candidates.flags.writeable  # cacheable
        ladders = [
            np.linspace(100.0 * (i + 1), 5000.0 + i, 4) for i in range(8)
        ]
        for bitrates in ladders:
            planner._switch_constants(candidates, bitrates)
            planner._arena_for(candidates, bitrates)
        assert len(planner._SWITCH_TERMS) <= 4
        assert len(planner._ARENAS) <= 4
        assert planner._CACHE_EVICTIONS["switch_terms"] >= before["switch_terms"] + 4
        assert planner._CACHE_EVICTIONS["arenas"] >= before["arenas"] + 4
        # Hits refresh recency: re-touching the oldest survivor keeps it.
        survivor = next(iter(planner._ARENAS))
        planner._arena_for(*_cache_entry_args(planner._ARENAS, survivor))
        planner._arena_for(candidates, np.linspace(99.0, 6001.0, 4))
        assert survivor in planner._ARENAS
        clear_plan_cache()

    def test_writable_candidates_never_cached(self):
        clear_plan_cache()
        candidates = enumerate_level_sequences(4, 3, max_step=1).copy()
        assert candidates.flags.writeable
        planner._arena_for(candidates, np.linspace(100.0, 4000.0, 4))
        assert len(planner._ARENAS) == 0
        clear_plan_cache()


def _cache_entry_args(cache, key):
    candidates = cache[key][0]
    # Reconstruct the ladder from the key's tobytes() payload.
    return candidates, np.frombuffer(key[1], dtype=np.float64)


class TestBlockSessions:
    """Cache-blocked tiling: floors, caps and config sensitivity."""

    def test_floor_and_cap(self):
        for scenarios in (1, 5):
            block = kernel_block_sessions(5, 4, 2, scenarios)
            assert 12 <= block <= 64

    def test_fewer_scenarios_allow_bigger_blocks(self):
        assert kernel_block_sessions(5, 4, 2, 1) >= kernel_block_sessions(
            5, 4, 2, 5
        )

    def test_legacy_impl_keeps_floor(self):
        try:
            set_kernel_impl("legacy")
            assert kernel_block_sessions(5, 4, 2, 5, floor=12) == 12
        finally:
            set_kernel_impl(None)

    def test_env_pin_wins(self, monkeypatch):
        monkeypatch.setattr(planner, "_KERNEL_BLOCK_PIN", "7")
        assert kernel_block_sessions(5, 4, 2, 5) == 7
