"""Tests for the bench reporter and shared provenance helpers
(`repro/engine/report.py`)."""

from __future__ import annotations

import json

from repro.engine.report import (
    BenchReport,
    environment_fingerprint,
    git_revision,
    read_bench_report,
    write_bench_report,
)


class TestBenchReport:
    def test_to_dict_round_trips_fields(self):
        report = BenchReport(
            sessions_per_sec=120.5,
            decisions_per_sec={"Fugu": 1000.0},
            grid={"speedup": 4.1, "cells": 48},
        )
        payload = report.to_dict()
        assert payload["sessions_per_sec"] == 120.5
        assert payload["decisions_per_sec"] == {"Fugu": 1000.0}
        assert payload["grid"]["speedup"] == 4.1

    def test_write_and_read(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        written = write_bench_report(
            BenchReport(sessions_per_sec=10.0), path=path
        )
        assert written == path
        payload = read_bench_report(path)
        assert payload["sessions_per_sec"] == 10.0
        # The environment fingerprint is stamped automatically.
        assert payload["meta"]["python"]
        assert payload["meta"]["platform"]
        assert payload["meta"]["cpu_count"] >= 1

    def test_write_preserves_explicit_meta(self, tmp_path):
        report = BenchReport(meta={"python": "overridden"})
        payload = read_bench_report(
            write_bench_report(report, path=tmp_path / "b.json")
        )
        assert payload["meta"]["python"] == "overridden"

    def test_read_missing_returns_none(self, tmp_path):
        assert read_bench_report(tmp_path / "absent.json") is None

    def test_written_json_is_sorted_and_terminated(self, tmp_path):
        path = write_bench_report(BenchReport(), path=tmp_path / "b.json")
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(
            json.dumps(json.loads(text), sort_keys=True)
        )


class TestProvenanceHelpers:
    def test_environment_fingerprint_keys(self):
        fingerprint = environment_fingerprint()
        assert set(fingerprint) == {"python", "platform", "cpu_count"}
        assert isinstance(fingerprint["python"], str)

    def test_git_revision_in_repo(self):
        revision = git_revision()
        # The test suite runs from a work tree, so a 40-hex hash comes back.
        assert revision is not None
        assert len(revision) == 40
        assert all(c in "0123456789abcdef" for c in revision)

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=tmp_path) is None
