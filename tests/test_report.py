"""Tests for the bench reporter and shared provenance helpers
(`repro/engine/report.py`)."""

from __future__ import annotations

import json

from repro.engine.report import (
    BenchReport,
    environment_fingerprint,
    git_revision,
    phases_from_snapshot,
    read_bench_report,
    utc_now_iso,
    write_bench_report,
)


def _snapshot_with_spans(dispatch=1.0, kernel=0.6, step=0.25):
    return {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": {
            "engine.dispatch": {"count": 1, "total_s": dispatch,
                                "max_s": dispatch},
            "planner.kernel": {"count": 10, "total_s": kernel, "max_s": 0.1},
            "player.step": {"count": 20, "total_s": step, "max_s": 0.02},
        },
    }


class TestBenchReport:
    def test_to_dict_round_trips_fields(self):
        report = BenchReport(
            sessions_per_sec=120.5,
            decisions_per_sec={"Fugu": 1000.0},
            grid={"speedup": 4.1, "cells": 48},
        )
        payload = report.to_dict()
        assert payload["sessions_per_sec"] == 120.5
        assert payload["decisions_per_sec"] == {"Fugu": 1000.0}
        assert payload["grid"]["speedup"] == 4.1

    def test_write_and_read(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        written = write_bench_report(
            BenchReport(sessions_per_sec=10.0), path=path
        )
        assert written == path
        payload = read_bench_report(path)
        assert payload["sessions_per_sec"] == 10.0
        # The environment fingerprint is stamped automatically.
        assert payload["meta"]["python"]
        assert payload["meta"]["platform"]
        assert payload["meta"]["cpu_count"] >= 1

    def test_write_preserves_explicit_meta(self, tmp_path):
        report = BenchReport(meta={"python": "overridden"})
        payload = read_bench_report(
            write_bench_report(report, path=tmp_path / "b.json")
        )
        assert payload["meta"]["python"] == "overridden"

    def test_read_missing_returns_none(self, tmp_path):
        assert read_bench_report(tmp_path / "absent.json") is None

    def test_written_json_is_sorted_and_terminated(self, tmp_path):
        path = write_bench_report(BenchReport(), path=tmp_path / "b.json")
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == json.loads(
            json.dumps(json.loads(text), sort_keys=True)
        )


class TestPhasesFromSnapshot:
    def test_splits_dispatch_into_disjoint_leaves(self):
        phases = phases_from_snapshot(_snapshot_with_spans())
        assert phases["dispatch_s"] == 1.0
        assert phases["planner_kernel_s"] == 0.6
        assert phases["stepping_s"] == 0.25
        assert phases["other_s"] == 0.15
        assert phases["planner_kernel_share"] == 0.6
        assert phases["stepping_share"] == 0.25
        assert phases["other_share"] == 0.15

    def test_empty_snapshot_gives_no_phases(self):
        assert phases_from_snapshot({"spans": {}}) == {}
        assert phases_from_snapshot({}) == {}

    def test_parallel_leaf_overshoot_clamps_other_at_zero(self):
        # Process-backend worker spans accumulate in parallel wall clocks,
        # so the leaf sum can exceed the parent dispatch; the remainder is
        # clamped, never negative.
        phases = phases_from_snapshot(
            _snapshot_with_spans(dispatch=1.0, kernel=0.8, step=0.4)
        )
        assert phases["other_s"] == 0.0
        assert phases["other_share"] == 0.0

    def test_missing_leaves_count_as_zero(self):
        snapshot = _snapshot_with_spans()
        del snapshot["spans"]["planner.kernel"]
        phases = phases_from_snapshot(snapshot)
        assert phases["planner_kernel_s"] == 0.0
        assert phases["other_s"] == 0.75

    def test_phases_survive_bench_report_round_trip(self, tmp_path):
        report = BenchReport(phases=phases_from_snapshot(_snapshot_with_spans()))
        payload = read_bench_report(
            write_bench_report(report, path=tmp_path / "b.json")
        )
        assert payload["phases"]["planner_kernel_share"] == 0.6

    def test_started_at_stamped_by_default(self, tmp_path):
        payload = read_bench_report(
            write_bench_report(BenchReport(), path=tmp_path / "b.json")
        )
        assert payload["meta"]["started_at"]

    def test_explicit_started_at_preserved(self, tmp_path):
        report = BenchReport(meta={"started_at": "2026-01-01T00:00:00+00:00"})
        payload = read_bench_report(
            write_bench_report(report, path=tmp_path / "b.json")
        )
        assert payload["meta"]["started_at"] == "2026-01-01T00:00:00+00:00"

    def test_utc_now_iso_shape(self):
        stamp = utc_now_iso()
        assert stamp.endswith("+00:00")
        assert "T" in stamp


class TestProvenanceHelpers:
    def test_environment_fingerprint_keys(self):
        fingerprint = environment_fingerprint()
        assert set(fingerprint) == {"python", "platform", "cpu_count"}
        assert isinstance(fingerprint["python"], str)

    def test_git_revision_in_repo(self):
        revision = git_revision()
        # The test suite runs from a work tree, so a 40-hex hash comes back.
        assert revision is not None
        assert len(revision) == 40
        assert all(c in "0123456789abcdef" for c in revision)

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=tmp_path) is None
