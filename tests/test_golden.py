"""Golden-master regression harness for the streaming engine.

``tests/golden/stream_results.json`` pins the *bitwise* output of a small
canonical session grid — every ABR family x two traces x proactive-stall
mode on/off, plus genuinely *trained* Pensieve and SENSEI-Pensieve
policies in both greedy and seeded-exploration mode — as produced by the
serial (seed-semantics) backend.  The test replays the grid through both
the serial and the lockstep backend and fails on any drift: a single
flipped bit in a level choice, a stall timestamp or a measured throughput
is a red suite, because the whole value of the fast engine rests on
trusting that its outputs are exactly the seed's (see docs/TESTING.md).

The trained-RL cells are the trust anchor for the lockstep engine's
batched RL driver: greedy cells pin the stacked-forward/argmax path, and
exploration cells (with a pinned ``WorkOrder.exploration_seed``) pin the
per-session RNG streams that let exploring policies batch at all.

Floats are serialised with ``float.hex()`` — lossless, so the comparison
is bit-exact, not approximate.

Regenerating (only after an *intentional*, reviewed semantic change):

    make regen-golden          # or: python tests/test_golden.py --regen
"""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.abr.bba import BufferBasedABR
from repro.abr.fugu import FuguABR
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.abr.rate import RateBasedABR
from repro.core.sensei_abr import SenseiFuguABR, make_sensei_pensieve
from repro.engine.runner import BatchRunner, WorkOrder
from repro.network.bank import TraceBank
from repro.player.session import StreamResult
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.video import SourceVideo

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_PATH = GOLDEN_DIR / "stream_results.json"

#: Proactive-stall modes: "on" drives SENSEI's stall scheduling (contrasted
#: sensitivity weights + the default stall options), "off" disables it
#: (uniform weights, no stall actions) so the grid pins both code paths.
STALL_MODES = ("on", "off")


def _encoded_video():
    """The canonical golden video: small but long enough to rebuffer."""
    source = SourceVideo.synthesize(
        "golden-sports", "sports", duration_s=64.0, chunk_duration_s=4.0,
        seed=1207,
    )
    return SyntheticEncoder(seed=1208).encode(source, DEFAULT_LADDER)


def _traces():
    """Two canonical traces: an ample one and a scarce, variable one.

    The scarce trace's 0.45 scale is picked so the SENSEI-Fugu stall-on
    cells actually schedule proactive stalls *and* some sessions rebuffer
    (asserted below) — the golden grid must keep pinning both stall paths.
    """
    bank = TraceBank(num_traces=2, duration_s=500.0, seed=1209)
    fast, _ = bank.traces()
    return [fast, fast.scaled(0.45, name="golden-scarce")]


def _abr_families(stall_mode: str):
    """One instance of every ABR family, fresh per call (seeded RL)."""
    stall_on = stall_mode == "on"
    return [
        BufferBasedABR(),
        RateBasedABR(),
        ModelPredictiveABR(),
        FuguABR(),
        SenseiFuguABR() if stall_on else SenseiFuguABR(
            stall_options_s=(0.0,)
        ),
        PensieveABR(config=PensieveConfig(seed=1210)),
        make_sensei_pensieve(seed=1211),
    ]


def _chunk_weights(encoded, stall_mode: str):
    if stall_mode != "on":
        return None
    # Strong sensitivity contrast: every fourth chunk is a key moment —
    # exactly the shape that opens SENSEI's proactive-stall gate.
    return np.where(np.arange(encoded.num_chunks) % 4 == 0, 3.0, 0.4)


def _train_rl(abr, encoded, traces, chunk_weights, episode_seeds):
    """A few genuine policy-gradient updates, deterministic by seeds.

    Every episode is a pure function of (parameters, episode seed) — the
    ``reseed_exploration`` discipline — so the resulting weights are fully
    pinned by the seeds here and the grid stays reproducible.  Returned in
    greedy mode.
    """
    from repro.ml.rl import EpisodeBuffer
    from repro.player.simulator import simulate_session

    abr.greedy = False
    for seed in episode_seeds:
        for trace in traces:
            abr.agent.reseed_exploration(seed)
            abr.begin_capture()
            result = simulate_session(
                abr, encoded, trace, chunk_weights=chunk_weights
            )
            trajectory = abr.end_capture()
            rewards = abr.quality_model.chunk_scores(result.rendered)
            if chunk_weights is not None:
                rewards = np.asarray(chunk_weights, dtype=float) * rewards
            abr.agent.train_on_episode(EpisodeBuffer.from_arrays(
                np.stack([state for state, _ in trajectory]),
                np.asarray([action for _, action in trajectory], dtype=int),
                rewards,
            ))
    abr.greedy = True
    return abr


def _trained_rl_cells(encoded, traces):
    """Trained Pensieve-family cells, greedy and seeded-exploration mode.

    Greedy cells pin the batched stacked-forward/argmax path; exploration
    cells pin the per-session RNG streams (``WorkOrder.exploration_seed``)
    the lockstep RL driver replays.  Both backends must reproduce all of
    them bitwise.
    """
    weights = _chunk_weights(encoded, "on")
    trained = [
        (None, _train_rl(
            PensieveABR(config=PensieveConfig(seed=1220)),
            encoded, traces, None, (1222, 1223),
        )),
        (weights, _train_rl(
            make_sensei_pensieve(seed=1221),
            encoded, traces, weights, (1224, 1225),
        )),
    ]
    cells = []
    for cell_weights, abr in trained:
        explorer = copy.deepcopy(abr)
        explorer.greedy = False
        for index, trace in enumerate(traces):
            cells.append((
                f"{abr.name}-trained/{trace.name}/greedy",
                WorkOrder(
                    abr=abr, encoded=encoded, trace=trace,
                    chunk_weights=cell_weights,
                ),
            ))
            seed = 1230 + index
            cells.append((
                f"{abr.name}-trained/{trace.name}/explore-{seed}",
                WorkOrder(
                    abr=explorer, encoded=encoded, trace=trace,
                    chunk_weights=cell_weights, exploration_seed=seed,
                ),
            ))
    return cells


def golden_orders():
    """The canonical (cell key, WorkOrder) grid, deterministic by seeds."""
    encoded = _encoded_video()
    traces = _traces()
    cells = []
    for stall_mode in STALL_MODES:
        weights = _chunk_weights(encoded, stall_mode)
        for abr in _abr_families(stall_mode):
            for trace in traces:
                key = f"{abr.name}/{trace.name}/stall-{stall_mode}"
                cells.append(
                    (
                        key,
                        WorkOrder(
                            abr=abr,
                            encoded=encoded,
                            trace=trace,
                            chunk_weights=weights,
                        ),
                    )
                )
    cells.extend(_trained_rl_cells(encoded, traces))
    return cells


# --------------------------------------------------------- serialisation


def _hex_list(values) -> list:
    return [float(value).hex() for value in values]


def serialize_result(result: StreamResult) -> dict:
    """Lossless JSON form of everything a StreamResult observable carries."""
    rendered = result.rendered
    timeline = result.timeline
    return {
        "abr": result.abr_name,
        "trace": result.trace_name,
        "levels": [int(level) for level in rendered.levels],
        "stalls_s": _hex_list(rendered.stalls_s),
        "startup_delay_s": float(rendered.startup_delay_s).hex(),
        "total_bytes": float(result.total_bytes).hex(),
        "session_duration_s": float(result.session_duration_s).hex(),
        "downloads": {
            "size_bytes": _hex_list(
                record.size_bytes for record in timeline.downloads
            ),
            "start_time_s": _hex_list(
                record.start_time_s for record in timeline.downloads
            ),
            "duration_s": _hex_list(
                record.duration_s for record in timeline.downloads
            ),
            "throughput_mbps": _hex_list(
                record.throughput_mbps for record in timeline.downloads
            ),
            "buffer_before_s": _hex_list(
                record.buffer_before_s for record in timeline.downloads
            ),
            "buffer_after_s": _hex_list(
                record.buffer_after_s for record in timeline.downloads
            ),
        },
        "stall_events": [
            [
                event.cause,
                int(event.chunk_index),
                float(event.start_time_s).hex(),
                float(event.duration_s).hex(),
            ]
            for event in timeline.stalls
        ],
    }


def compute_golden(backend: str) -> dict:
    cells = golden_orders()
    runner = BatchRunner(backend=backend)
    results = runner.run_orders([order for _, order in cells])
    return {
        key: serialize_result(result)
        for (key, _), result in zip(cells, results)
    }


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    payload = {
        "_comment": (
            "Golden-master StreamResults (serial backend, float hex). "
            "Regenerate ONLY after an intentional semantic change: "
            "make regen-golden. See docs/TESTING.md."
        ),
        "cells": compute_golden("serial"),
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {GOLDEN_PATH} ({len(payload['cells'])} cells)")


# ----------------------------------------------------------------- tests


@pytest.fixture(scope="module")
def golden_cells() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover - setup error
        pytest.fail(
            f"{GOLDEN_PATH} missing - regenerate with `make regen-golden`"
        )
    return json.loads(GOLDEN_PATH.read_text())["cells"]


class TestGoldenMasters:
    @pytest.mark.parametrize("backend", ["serial", "lockstep"])
    def test_backend_matches_golden_bitwise(self, golden_cells, backend):
        """Both backends reproduce the pinned grid bit for bit."""
        computed = compute_golden(backend)
        assert sorted(computed) == sorted(golden_cells), (
            "golden grid shape changed - regenerate with `make regen-golden`"
        )
        for key, expected in golden_cells.items():
            actual = computed[key]
            if actual != expected:
                drifted = [
                    field
                    for field in expected
                    if actual.get(field) != expected[field]
                ]
                pytest.fail(
                    f"golden drift in cell {key!r}, fields {drifted}: "
                    "the engine no longer reproduces the pinned seed "
                    "semantics bitwise. If (and only if) this change is "
                    "intentional, regenerate with `make regen-golden` and "
                    "review the fixture diff."
                )

    def test_grid_covers_proactive_stalls(self, golden_cells):
        """The pinned grid exercises the proactive-stall path — otherwise
        golden coverage of SENSEI's distinguishing action silently decays."""
        stall_cells = [
            cell
            for key, cell in golden_cells.items()
            if key.startswith("SENSEI-Fugu/") and key.endswith("stall-on")
        ]
        assert any(
            any(event[0] == "proactive" for event in cell["stall_events"])
            for cell in stall_cells
        )

    def test_grid_covers_rebuffering(self, golden_cells):
        """The scarce trace must actually rebuffer someone."""
        assert any(
            any(event[0] == "rebuffer" for event in cell["stall_events"])
            for cell in golden_cells.values()
        )

    def test_grid_covers_trained_rl_both_modes(self, golden_cells):
        """Trained RL coverage must not decay: both families, both modes.

        The exploration cells are what pins the lockstep RL driver's
        per-session RNG streams; losing them would let the sampling path
        drift without a red suite.
        """
        for family in ("Pensieve-trained", "SENSEI-Pensieve-trained"):
            greedy = [
                key for key in golden_cells
                if key.startswith(f"{family}/") and key.endswith("/greedy")
            ]
            explore = [
                key for key in golden_cells
                if key.startswith(f"{family}/") and "/explore-" in key
            ]
            assert greedy and explore, family
        # Exploration must actually diverge from greedy somewhere, or the
        # explore cells silently pin the same trajectories twice.
        assert any(
            golden_cells[greedy_key]["levels"] != golden_cells[explore_key]["levels"]
            for greedy_key in golden_cells if greedy_key.endswith("/greedy")
            for explore_key in golden_cells
            if "/explore-" in explore_key
            and explore_key.split("/")[:2] == greedy_key.split("/")[:2]
        )


if __name__ == "__main__":
    if "--regen" in sys.argv:
        regenerate()
    else:  # pragma: no cover - convenience entry point
        print(__doc__)
        print("usage: python tests/test_golden.py --regen")
