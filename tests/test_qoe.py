"""Tests for the QoE models and the ground-truth oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qoe.base import CHUNK_FEATURE_NAMES, chunk_feature_matrix
from repro.qoe.ground_truth import GroundTruthOracle, SensitivityParameters
from repro.qoe.ksqi import KSQIModel
from repro.qoe.lstm_qoe import LSTMQoEModel
from repro.qoe.metrics import evaluate_model
from repro.qoe.p1203 import P1203Model, summary_features
from repro.qoe.vqa import psnr_proxy, ssim_proxy, vmaf_proxy
from repro.video.rendering import (
    QualityIncident,
    inject_incident,
    make_video_series,
    render_pristine,
)


@pytest.fixture(scope="module")
def degraded(pristine):
    """A rendering with one stall and one bitrate drop."""
    rendered = inject_incident(pristine, QualityIncident.rebuffering(3, 2.0))
    return inject_incident(rendered, QualityIncident.bitrate_drop(7, 0))


class TestFeatureExtraction:
    def test_matrix_shape(self, pristine):
        matrix = chunk_feature_matrix(pristine)
        assert matrix.shape == (pristine.num_chunks, len(CHUNK_FEATURE_NAMES))

    def test_pristine_features(self, pristine):
        matrix = chunk_feature_matrix(pristine)
        assert np.all(matrix[:, 1] == 0.0)       # no stalls
        assert np.all(matrix[:, 2] == 0.0)       # no switches
        assert np.all(matrix[:, 3] == 1.0)       # top bitrate

    def test_degraded_features(self, degraded):
        matrix = chunk_feature_matrix(degraded)
        assert matrix[3, 1] == 2.0
        assert matrix[7, 3] < 1.0


class TestVQAProxies:
    def test_vmaf_range(self, pristine):
        vmaf = vmaf_proxy(pristine)
        assert np.all((vmaf >= 0) & (vmaf <= 100))

    def test_ssim_range_and_monotonicity(self, pristine, degraded):
        assert np.all((ssim_proxy(pristine) >= 0) & (ssim_proxy(pristine) <= 1))
        assert ssim_proxy(degraded)[7] < ssim_proxy(pristine)[7]

    def test_psnr_decreases_with_bitrate_drop(self, pristine, degraded):
        assert psnr_proxy(degraded)[7] < psnr_proxy(pristine)[7]

    def test_vmaf_drops_where_bitrate_drops(self, pristine, degraded):
        assert vmaf_proxy(degraded)[7] < vmaf_proxy(pristine)[7]


class TestGroundTruthOracle:
    def test_pristine_scores_high(self, oracle, pristine):
        assert oracle.true_qoe(pristine) > 0.85

    def test_qoe_in_unit_interval(self, oracle, degraded):
        assert 0.0 <= oracle.true_qoe(degraded) <= 1.0

    def test_incidents_reduce_qoe(self, oracle, pristine, degraded):
        assert oracle.true_qoe(degraded) < oracle.true_qoe(pristine)

    def test_longer_stall_hurts_more(self, oracle, pristine):
        short = inject_incident(pristine, QualityIncident.rebuffering(3, 1.0))
        long = inject_incident(pristine, QualityIncident.rebuffering(3, 4.0))
        assert oracle.true_qoe(long) < oracle.true_qoe(short)

    def test_sensitivity_position_matters(self, oracle, small_encoded, pristine):
        sensitivity = oracle.sensitivity_curve(small_encoded.source)
        most = int(np.argmax(sensitivity))
        least = int(np.argmin(sensitivity))
        at_most = inject_incident(pristine, QualityIncident.rebuffering(most, 2.0))
        at_least = inject_incident(pristine, QualityIncident.rebuffering(least, 2.0))
        assert oracle.true_qoe(at_most) < oracle.true_qoe(at_least)

    def test_sensitivity_tracks_key_moments(self, oracle, small_video):
        sensitivity = oracle.sensitivity_curve(small_video)
        key_moments = small_video.key_moment_curve()
        assert np.corrcoef(sensitivity, key_moments)[0, 1] > 0.99

    def test_normalized_sensitivity_mean_one(self, oracle, small_video):
        assert np.mean(oracle.normalized_sensitivity(small_video)) == pytest.approx(1.0)

    def test_mos_scale(self, oracle, pristine):
        mos = oracle.true_mos(pristine)
        assert 1.0 <= mos <= 5.0
        assert mos == pytest.approx(1.0 + 4.0 * oracle.true_qoe(pristine))

    def test_startup_delay_penalised(self, oracle, pristine):
        from dataclasses import replace
        delayed = replace(pristine, startup_delay_s=10.0)
        assert oracle.true_qoe(delayed) < oracle.true_qoe(pristine)

    def test_qoe_gap_for_series(self, oracle, small_encoded):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 1.0))
        gap = oracle.qoe_gap_for_series(series)
        assert gap > 0.0

    def test_incident_type_agnostic_ranking(self, oracle, small_encoded):
        series_a = make_video_series(small_encoded, QualityIncident.rebuffering(0, 1.0))
        series_b = make_video_series(small_encoded, QualityIncident.rebuffering(0, 4.0))
        qoe_a = [oracle.true_qoe(r) for r in series_a]
        qoe_b = [oracle.true_qoe(r) for r in series_b]
        assert np.corrcoef(qoe_a, qoe_b)[0, 1] > 0.9

    def test_custom_parameters_validation(self):
        with pytest.raises(ValueError):
            SensitivityParameters(base_sensitivity=0.0)
        with pytest.raises(ValueError):
            SensitivityParameters(rebuffer_penalty_per_s=-1.0)

    def test_saturation_keeps_qoe_nonnegative(self, oracle, pristine):
        rendered = pristine
        for chunk in range(0, pristine.num_chunks, 2):
            rendered = inject_incident(
                rendered, QualityIncident.rebuffering(chunk, 6.0)
            )
        assert oracle.true_qoe(rendered) >= 0.0


class TestKSQI:
    def test_pristine_high_score(self, pristine):
        assert KSQIModel().score(pristine) > 0.7

    def test_incident_reduces_score(self, pristine, degraded):
        model = KSQIModel()
        assert model.score(degraded) < model.score(pristine)

    def test_chunk_scores_shape(self, pristine):
        assert KSQIModel().chunk_scores(pristine).shape == (pristine.num_chunks,)

    def test_weighted_score_emphasises_weighted_chunks(self, pristine):
        model = KSQIModel()
        stalled = inject_incident(pristine, QualityIncident.rebuffering(3, 2.0))
        weights_high = np.ones(pristine.num_chunks)
        weights_high[3] = 3.0
        weights_low = np.ones(pristine.num_chunks)
        weights_low[3] = 0.2
        assert model.weighted_score(stalled, weights_high) < model.weighted_score(
            stalled, weights_low
        )

    def test_chunk_quality_function_monotone_in_stall(self):
        model = KSQIModel()
        good = model.chunk_quality_function(4, 0.0, 90.0, 2850, 2850, 2850)
        bad = model.chunk_quality_function(4, 2.0, 90.0, 2850, 2850, 2850)
        assert bad < good

    def test_fit_learns_rebuffer_penalty(self, oracle, small_encoded, pristine):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 2.0))
        renderings = [pristine] + series
        mos = [1 + 4 * oracle.true_qoe(r) for r in renderings]
        model = KSQIModel().fit(renderings, mos)
        assert model.coefficients.rebuffer_weight > 0.0
        # After fitting, stalled renderings still score below pristine.
        assert model.score(series[0]) < model.score(pristine)

    def test_fit_requires_enough_points(self, pristine):
        with pytest.raises(ValueError):
            KSQIModel().fit([pristine], [4.0])


class TestP1203:
    def test_summary_features_shape(self, pristine):
        assert summary_features(pristine).shape == (10,)

    def test_untrained_fallback_orders_renderings(self, pristine, degraded):
        model = P1203Model()
        assert model.score(degraded) <= model.score(pristine)

    def test_training_improves_fit(self, oracle, small_encoded, pristine):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 3.0))
        renderings = [pristine] + series
        labels = [oracle.true_qoe(r) for r in renderings]
        model = P1203Model(num_trees=10, seed=1).fit(renderings, labels)
        predictions = model.score_many(renderings)
        assert np.corrcoef(predictions, labels)[0, 1] > 0.3

    def test_score_in_unit_interval(self, pristine, degraded):
        model = P1203Model()
        for rendering in (pristine, degraded):
            assert 0.0 <= model.score(rendering) <= 1.0


class TestLSTMQoE:
    def test_untrained_fallback_in_range(self, pristine, degraded):
        model = LSTMQoEModel()
        assert 0.0 <= model.score(degraded) <= model.score(pristine) <= 1.0

    def test_training_runs_and_predicts(self, oracle, small_encoded, pristine):
        series = make_video_series(
            small_encoded, QualityIncident.rebuffering(0, 3.0), chunk_indices=range(6)
        )
        renderings = [pristine] + series
        labels = [oracle.true_qoe(r) for r in renderings]
        model = LSTMQoEModel(hidden_dim=8, epochs=3, seed=2).fit(renderings, labels)
        predictions = model.score_many(renderings)
        assert predictions.shape == (len(renderings),)
        assert np.all((predictions >= 0) & (predictions <= 1))


class TestModelEvaluation:
    def test_evaluate_model_perfect_predictor(self, oracle, small_encoded):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 2.0))
        labels = [oracle.true_qoe(r) for r in series]

        class OracleModel(KSQIModel):
            name = "oracle-proxy"

            def score(self, rendered):
                return oracle.true_qoe(rendered)

        evaluation = evaluate_model(OracleModel(), series, labels)
        assert evaluation.plcc == pytest.approx(1.0)
        assert evaluation.srcc == pytest.approx(1.0)
        assert evaluation.discordant_fraction == 0.0
        assert evaluation.mean_relative_error == pytest.approx(0.0)

    def test_evaluation_dict_keys(self, oracle, small_encoded):
        series = make_video_series(small_encoded, QualityIncident.rebuffering(0, 2.0))
        labels = [oracle.true_qoe(r) for r in series]
        evaluation = evaluate_model(KSQIModel(), series, labels)
        assert {"model", "plcc", "srcc"} <= set(evaluation.as_dict())
