"""Property-based tests (hypothesis) on core invariants across the stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abr.base import Decision
from repro.core.weights import SensitivityProfile
from repro.network.trace import ThroughputTrace
from repro.player.simulator import simulate_session
from repro.qoe.ground_truth import GroundTruthOracle
from repro.qoe.ksqi import KSQIModel
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.rendering import QualityIncident, inject_incident, render_pristine
from repro.video.video import SourceVideo

_ORACLE = GroundTruthOracle()
_KSQI = KSQIModel()


@st.composite
def encoded_videos(draw):
    """Small synthetic encoded videos across genres and lengths."""
    genre = draw(st.sampled_from(["sports", "gaming", "nature", "animation"]))
    num_chunks = draw(st.integers(4, 14))
    seed = draw(st.integers(0, 50))
    video = SourceVideo.synthesize(
        f"prop-{genre}-{seed}", genre,
        duration_s=num_chunks * 4.0, chunk_duration_s=4.0, seed=seed,
    )
    return SyntheticEncoder(seed=seed + 1).encode(video, DEFAULT_LADDER)


@st.composite
def renderings(draw):
    """Arbitrary renderings: random levels, a few stalls."""
    encoded = draw(encoded_videos())
    n = encoded.num_chunks
    levels = draw(
        st.lists(st.integers(0, 4), min_size=n, max_size=n)
    )
    stall_chunk = draw(st.integers(0, n - 1))
    stall_s = draw(st.floats(0.0, 6.0))
    rendered = render_pristine(encoded)
    from dataclasses import replace
    stalls = np.zeros(n)
    stalls[stall_chunk] = stall_s
    return replace(rendered, levels=np.array(levels), stalls_s=stalls)


class TestOracleProperties:
    @given(renderings())
    @settings(max_examples=25, deadline=None)
    def test_true_qoe_in_unit_interval(self, rendered):
        assert 0.0 <= _ORACLE.true_qoe(rendered) <= 1.0

    @given(renderings(), st.floats(0.5, 5.0))
    @settings(max_examples=20, deadline=None)
    def test_adding_a_stall_never_raises_qoe(self, rendered, extra_stall):
        chunk = rendered.num_chunks // 2
        degraded = inject_incident(
            rendered, QualityIncident.rebuffering(chunk, extra_stall)
        )
        assert _ORACLE.true_qoe(degraded) <= _ORACLE.true_qoe(rendered) + 1e-9

    @given(encoded_videos())
    @settings(max_examples=20, deadline=None)
    def test_pristine_is_best_rendering_of_its_video(self, encoded):
        pristine = render_pristine(encoded)
        degraded = inject_incident(pristine, QualityIncident.rebuffering(1, 2.0))
        dropped = inject_incident(pristine, QualityIncident.bitrate_drop(2, 0))
        best = _ORACLE.true_qoe(pristine)
        assert best >= _ORACLE.true_qoe(degraded)
        assert best >= _ORACLE.true_qoe(dropped)

    @given(encoded_videos())
    @settings(max_examples=20, deadline=None)
    def test_sensitivity_normalisation(self, encoded):
        sensitivity = _ORACLE.normalized_sensitivity(encoded.source)
        assert np.all(sensitivity > 0)
        assert np.mean(sensitivity) == pytest.approx(1.0)


class TestKSQIProperties:
    @given(renderings())
    @settings(max_examples=25, deadline=None)
    def test_score_in_unit_interval(self, rendered):
        assert 0.0 <= _KSQI.score(rendered) <= 1.0

    @given(renderings())
    @settings(max_examples=20, deadline=None)
    def test_uniform_weighting_matches_plain_score(self, rendered):
        weights = np.ones(rendered.num_chunks)
        assert _KSQI.weighted_score(rendered, weights) == pytest.approx(
            _KSQI.score(rendered)
        )


class TestProfileProperties:
    @given(st.lists(st.floats(0.1, 5.0), min_size=2, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_normalised_profile_mean_one(self, weights):
        profile = SensitivityProfile("v", np.array(weights)).normalized()
        assert np.mean(profile.weights) == pytest.approx(1.0)
        assert np.all(profile.weights > 0)

    @given(st.lists(st.floats(0.1, 5.0), min_size=2, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_serialisation_roundtrip(self, weights):
        profile = SensitivityProfile("v", np.array(weights))
        restored = SensitivityProfile.from_dict(profile.to_dict())
        assert np.allclose(restored.weights, profile.weights)


class TestSessionProperties:
    @given(
        encoded_videos(),
        st.floats(0.4, 8.0),
        st.integers(0, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_session_conserves_chunks_and_time(self, encoded, rate_mbps, level):
        from repro.abr.base import ABRAlgorithm

        class Fixed(ABRAlgorithm):
            name = "fixed"

            def decide(self, observation):
                return Decision(level=level)

        trace = ThroughputTrace.constant(rate_mbps, duration_s=4000.0)
        result = simulate_session(Fixed(), encoded, trace)
        rendered = result.rendered
        # Every chunk was played at the requested level.
        assert np.all(rendered.levels == level)
        # Wall-clock time is at least playback plus stalls plus startup.
        minimum_duration = (
            encoded.num_chunks * encoded.chunk_duration_s
            + rendered.total_stall_s()
            + rendered.startup_delay_s
        )
        assert result.session_duration_s >= minimum_duration - 1e-6
        # Bytes downloaded match the rendered levels exactly.
        assert result.total_bytes == pytest.approx(rendered.total_bytes())

    @given(encoded_videos(), st.floats(0.3, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_lowest_level_never_stalls_when_rate_exceeds_lowest_rung(
        self, encoded, rate_mbps
    ):
        from repro.abr.base import ABRAlgorithm

        class Lowest(ABRAlgorithm):
            name = "lowest"

            def decide(self, observation):
                return Decision(level=0)

        trace = ThroughputTrace.constant(rate_mbps, duration_s=4000.0)
        result = simulate_session(Lowest(), encoded, trace)
        max_chunk_rate_mbps = max(
            encoded.chunk_size_bytes(i, 0) * 8 / 1e6 / encoded.chunk_duration_s
            for i in range(encoded.num_chunks)
        )
        if rate_mbps >= max_chunk_rate_mbps * 1.05:
            assert result.rendered.total_stall_s() == pytest.approx(0.0, abs=1e-6)


# --------------------------------------------------------------------------
# Engine regression properties (PR 5): the batched trace integrator must be
# *bitwise* the scalar integrator, and SoA-stepped sessions must obey the
# player's conservation invariants.  See docs/TESTING.md.
# --------------------------------------------------------------------------


@st.composite
def throughput_traces(draw):
    """Traces of varied shapes: ragged spacings, spiky bandwidths, 1+ samples."""
    num_samples = draw(st.integers(1, 40))
    spacings = draw(
        st.lists(
            st.floats(0.05, 30.0, allow_nan=False, allow_infinity=False),
            min_size=max(0, num_samples - 1),
            max_size=max(0, num_samples - 1),
        )
    )
    timestamps = np.concatenate([[0.0], np.cumsum(spacings)])
    bandwidths = draw(
        st.lists(
            st.floats(0.001, 500.0, allow_nan=False, allow_infinity=False),
            min_size=num_samples,
            max_size=num_samples,
        )
    )
    return ThroughputTrace(
        timestamps_s=timestamps,
        bandwidths_mbps=np.array(bandwidths),
        name="prop-trace",
    )


class TestBatchedTraceIntegrator:
    @given(
        throughput_traces(),
        st.lists(st.floats(1.0, 5e8), min_size=1, max_size=24),
        st.lists(st.floats(0.0, 1e5), min_size=1, max_size=24),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_bitwise_equals_scalar(self, trace, sizes, starts):
        """download_times_batch == per-call download_time_s, bit for bit."""
        count = min(len(sizes), len(starts))
        sizes_arr = np.asarray(sizes[:count])
        starts_arr = np.asarray(starts[:count])
        batch = trace.download_times_batch(sizes_arr, starts_arr)
        for index in range(count):
            scalar = trace.download_time_s(
                float(sizes_arr[index]), float(starts_arr[index])
            )
            assert batch[index] == scalar, (
                f"bitwise drift at index {index}: "
                f"batch={batch[index]!r} scalar={scalar!r} "
                f"(size={sizes_arr[index]!r}, start={starts_arr[index]!r})"
            )

    @given(throughput_traces(), st.floats(1.0, 5e8), st.floats(0.0, 1e5))
    @settings(max_examples=40, deadline=None)
    def test_download_time_positive_and_rate_bounded(self, trace, size, start):
        """The integral is positive and never beats the fastest segment."""
        elapsed = trace.download_time_s(size, start)
        assert elapsed > 0
        peak_rate = max(float(np.max(trace.bandwidths_mbps)), 0.01) * 1e6
        assert elapsed >= size * 8.0 / peak_rate - 1e-6


def _session_abrs():
    """A varied ABR pool: map-based, rule-based, and both planner families."""
    from repro.abr.bba import BufferBasedABR
    from repro.abr.fugu import FuguABR
    from repro.abr.rate import RateBasedABR
    from repro.core.sensei_abr import SenseiFuguABR

    return st.sampled_from(["bba", "rate", "fugu", "sensei"]).map(
        {
            "bba": BufferBasedABR,
            "rate": RateBasedABR,
            "fugu": FuguABR,
            "sensei": SenseiFuguABR,
        }.__getitem__
    )


@st.composite
def streamed_sessions(draw):
    """A finished streaming session over random video/trace/ABR/weights."""
    encoded = draw(encoded_videos())
    abr = draw(_session_abrs())()
    if draw(st.booleans()):
        trace = ThroughputTrace.constant(
            draw(st.floats(0.2, 6.0)), duration_s=2000.0
        )
    else:
        trace = draw(throughput_traces())
    weights = None
    if draw(st.booleans()):
        rng = np.random.default_rng(draw(st.integers(0, 10_000)))
        weights = rng.uniform(0.3, 3.0, encoded.num_chunks)
    return simulate_session(abr, encoded, trace, chunk_weights=weights)


class TestPlayerConservationInvariants:
    @given(streamed_sessions())
    @settings(max_examples=25, deadline=None)
    def test_buffer_never_negative(self, result):
        """The buffer level observed around every download is >= 0."""
        for record in result.timeline.downloads:
            assert record.buffer_before_s >= 0.0
            assert record.buffer_after_s >= 0.0

    @given(streamed_sessions())
    @settings(max_examples=25, deadline=None)
    def test_stall_plus_play_time_sums_to_wall_time(self, result):
        """startup + stalls + played media == session wall-clock time."""
        rendered = result.rendered
        media_s = rendered.num_chunks * rendered.chunk_duration_s
        accounted = (
            rendered.startup_delay_s + float(np.sum(rendered.stalls_s)) + media_s
        )
        assert result.session_duration_s == pytest.approx(accounted, abs=1e-6)

    @given(streamed_sessions())
    @settings(max_examples=25, deadline=None)
    def test_timeline_stalls_match_rendered_stalls(self, result):
        """The event log and the per-chunk stall vector tell one story."""
        event_total = sum(
            event.duration_s
            for event in result.timeline.stalls
            if event.cause != "startup"
        )
        assert float(np.sum(result.rendered.stalls_s)) == pytest.approx(
            event_total, abs=1e-9
        )
