"""Tests for the playback buffer, streaming session and DASH manifest."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.base import ABRAlgorithm, Decision
from repro.abr.bba import BufferBasedABR
from repro.network.trace import ThroughputTrace
from repro.player.buffer import PlaybackBuffer
from repro.player.manifest import SenseiManifest, manifest_from_xml, manifest_to_xml
from repro.player.session import SessionConfig, StreamingSession
from repro.player.simulator import simulate_many, simulate_session


class FixedLevelABR(ABRAlgorithm):
    """Always requests the same level (test helper)."""

    name = "fixed"

    def __init__(self, level: int, stall_at: int = -1, stall_s: float = 0.0):
        self.level = level
        self.stall_at = stall_at
        self.stall_s = stall_s

    def decide(self, observation):
        stall = self.stall_s if observation.chunk_index == self.stall_at else 0.0
        return Decision(level=self.level, proactive_stall_s=stall)


class TestPlaybackBuffer:
    def test_add_and_drain(self):
        buffer = PlaybackBuffer(capacity_s=20.0)
        assert buffer.add_chunk(4.0) == 0.0
        assert buffer.level_s == 4.0
        assert buffer.drain(1.5) == 1.5
        assert buffer.level_s == pytest.approx(2.5)

    def test_drain_more_than_available(self):
        buffer = PlaybackBuffer(capacity_s=20.0, level_s=2.0)
        assert buffer.drain(5.0) == 2.0
        assert buffer.is_empty

    def test_overshoot_reported(self):
        buffer = PlaybackBuffer(capacity_s=6.0, level_s=4.0)
        assert buffer.add_chunk(4.0) == pytest.approx(2.0)

    def test_headroom(self):
        buffer = PlaybackBuffer(capacity_s=10.0, level_s=4.0)
        assert buffer.headroom_s == 6.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(capacity_s=0.0)
        with pytest.raises(ValueError):
            PlaybackBuffer(capacity_s=5.0, level_s=6.0)


class TestStreamingSession:
    def test_fast_network_top_rate_no_stalls(self, small_encoded):
        trace = ThroughputTrace.constant(20.0, duration_s=600.0)
        result = simulate_session(FixedLevelABR(4), small_encoded, trace)
        assert np.all(result.rendered.levels == 4)
        assert result.rendered.total_stall_s() == 0.0
        assert result.startup_delay_s > 0.0

    def test_slow_network_causes_stalls_at_high_bitrate(self, small_encoded, slow_trace):
        result = simulate_session(FixedLevelABR(4), small_encoded, slow_trace)
        assert result.rendered.total_stall_s() > 0.0

    def test_lowest_level_avoids_stalls_on_slow_network(self, small_encoded, slow_trace):
        result = simulate_session(FixedLevelABR(0), small_encoded, slow_trace)
        assert result.rendered.total_stall_s() == pytest.approx(0.0, abs=1e-6)

    def test_total_bytes_matches_rendering(self, small_encoded, constant_trace):
        result = simulate_session(FixedLevelABR(2), small_encoded, constant_trace)
        assert result.total_bytes == pytest.approx(result.rendered.total_bytes())

    def test_session_duration_covers_playback(self, small_encoded, constant_trace):
        result = simulate_session(FixedLevelABR(2), small_encoded, constant_trace)
        playback = small_encoded.num_chunks * small_encoded.chunk_duration_s
        assert result.session_duration_s >= playback

    def test_proactive_stall_recorded(self, small_encoded, constant_trace):
        abr = FixedLevelABR(1, stall_at=4, stall_s=2.0)
        result = simulate_session(abr, small_encoded, constant_trace)
        assert result.rendered.total_stall_s() == pytest.approx(2.0, abs=1e-6)
        assert result.timeline.proactive_stall_count() >= 1

    def test_proactive_stall_grows_buffer_relative_to_no_stall(
        self, small_encoded, constant_trace
    ):
        base = simulate_session(FixedLevelABR(2), small_encoded, constant_trace)
        stalled = simulate_session(
            FixedLevelABR(2, stall_at=3, stall_s=2.0), small_encoded, constant_trace
        )
        # Same downloads, but playback paused 2 s, so the session takes longer.
        assert stalled.session_duration_s >= base.session_duration_s + 1.9

    def test_throughput_measurements_recorded(self, small_encoded, constant_trace):
        result = simulate_session(FixedLevelABR(2), small_encoded, constant_trace)
        throughputs = result.timeline.measured_throughputs_mbps()
        assert len(throughputs) == small_encoded.num_chunks
        assert all(t > 0 for t in throughputs)

    def test_measured_throughput_close_to_trace(self, small_encoded, constant_trace):
        result = simulate_session(FixedLevelABR(3), small_encoded, constant_trace)
        mean_measured = np.mean(result.timeline.measured_throughputs_mbps())
        assert mean_measured == pytest.approx(2.0, rel=0.05)

    def test_buffer_capacity_respected(self, small_encoded):
        trace = ThroughputTrace.constant(50.0, duration_s=600.0)
        config = SessionConfig(buffer_capacity_s=12.0)
        session = StreamingSession(small_encoded, trace, FixedLevelABR(0), config=config)
        result = session.run()
        for record in result.timeline.downloads:
            assert record.buffer_after_s <= 12.0 + 1e-6

    def test_weights_validation(self, small_encoded, constant_trace):
        with pytest.raises(ValueError):
            StreamingSession(
                small_encoded, constant_trace, FixedLevelABR(0),
                chunk_weights=np.ones(3),
            )

    def test_bandwidth_usage_positive(self, small_encoded, constant_trace):
        result = simulate_session(FixedLevelABR(2), small_encoded, constant_trace)
        assert 0.0 < result.bandwidth_usage_mbps() < 20.0

    def test_simulate_many_grid(self, small_encoded, constant_trace, slow_trace):
        results = simulate_many(
            [BufferBasedABR()], [small_encoded], [constant_trace, slow_trace]
        )
        assert len(results) == 2
        names = {r[0] for r in results}
        assert names == {"BBA"}

    def test_zero_duration_download_does_not_divide_by_zero(self, small_encoded):
        """Regression: a trace yielding a ~0 s download must not produce an
        infinite (or crashing) throughput measurement."""

        class InstantTrace(ThroughputTrace):
            def download_time_s(self, size_bytes, start_time_s):
                return 0.0

            def download_time_s_reference(self, size_bytes, start_time_s):
                return 0.0

        trace = InstantTrace(
            timestamps_s=np.array([0.0]),
            bandwidths_mbps=np.array([1.0]),
            name="instant",
        )
        for use_precompute in (True, False):
            result = simulate_session(
                FixedLevelABR(2), small_encoded, trace,
                use_precompute=use_precompute,
            )
            throughputs = result.timeline.measured_throughputs_mbps()
            assert all(np.isfinite(throughputs))
            assert all(t > 0 for t in throughputs)
            assert all(
                record.duration_s > 0 for record in result.timeline.downloads
            )


class TestObservation:
    def test_observation_contents(self, small_encoded, constant_trace):
        captured = []

        class Spy(ABRAlgorithm):
            name = "spy"

            def decide(self, observation):
                captured.append(observation)
                return Decision(level=1)

        simulate_session(Spy(), small_encoded, constant_trace)
        assert len(captured) == small_encoded.num_chunks
        first = captured[0]
        assert first.chunk_index == 0
        assert first.last_level == -1
        assert first.throughput_history_mbps.size == 0
        assert first.upcoming_sizes_bytes.shape[1] == 5
        later = captured[5]
        assert later.last_level == 1
        assert later.throughput_history_mbps.size > 0
        assert later.horizon <= 5

    def test_horizon_truncated_at_video_end(self, small_encoded, constant_trace):
        captured = []

        class Spy(ABRAlgorithm):
            name = "spy"

            def decide(self, observation):
                captured.append(observation.horizon)
                return Decision(level=0)

        simulate_session(Spy(), small_encoded, constant_trace)
        assert captured[-1] == 1


class TestManifest:
    def test_from_encoded(self, small_encoded):
        manifest = SenseiManifest.from_encoded(small_encoded)
        assert manifest.num_chunks == small_encoded.num_chunks
        assert manifest.num_levels == 5
        assert np.allclose(manifest.weights, 1.0)

    def test_xml_roundtrip_preserves_weights(self, small_encoded):
        weights = np.linspace(0.5, 2.0, small_encoded.num_chunks)
        manifest = SenseiManifest.from_encoded(small_encoded, weights=weights)
        xml = manifest_to_xml(manifest)
        parsed = manifest_from_xml(xml)
        assert np.allclose(parsed.weights, weights, atol=1e-5)
        assert parsed.video_id == manifest.video_id

    def test_xml_roundtrip_preserves_sizes(self, small_encoded):
        manifest = SenseiManifest.from_encoded(small_encoded)
        parsed = manifest_from_xml(manifest_to_xml(manifest))
        # Sizes are serialised as whole bytes in the MPD, so allow rounding.
        assert np.allclose(
            parsed.segment_sizes_bytes, manifest.segment_sizes_bytes, atol=1.0
        )

    def test_xml_contains_sensei_extension(self, small_encoded):
        xml = manifest_to_xml(SenseiManifest.from_encoded(small_encoded))
        assert "sensei" in xml and "weights" in xml

    def test_ladder_reconstruction(self, small_encoded):
        manifest = SenseiManifest.from_encoded(small_encoded)
        assert manifest.ladder().num_levels == 5

    def test_rejects_misaligned_weights(self, small_encoded):
        with pytest.raises(ValueError):
            SenseiManifest.from_encoded(small_encoded, weights=[1.0, 2.0])
