"""Differential trust suite for batched RL inference (batched ≡ scalar).

The lockstep engine's RL driver stacks every session's observation and
runs **one** actor forward per decision round.  The whole construction is
only sound if batching is *bitwise* invisible:

* ``repro.ml.nn.row_matmul`` must make every layer's matmul row-stable,
  so ``MLP.forward`` over a batch equals the per-row forwards bit for bit
  (``TestBatchedForwardDifferential`` — hypothesis over random widths,
  weights, batch sizes, dtypes and memory layouts);
* ``ActorCriticAgent.action_probabilities_batch`` must therefore equal
  ``action_probabilities`` per row (including ragged views, single-row
  and empty batches);
* exploration-mode sampling through the lockstep driver's per-session RNG
  streams must replay the serial ``reseed_exploration`` discipline
  exactly, for any checkpoint and any shard split
  (``TestSamplingBitidentityFuzz`` — randomized end-to-end sessions with
  hypothesis-shrinkable repros; every failing example prints its full
  seed tuple, chaos-suite style).

Everything here asserts **bitwise** equality (``tobytes``), never
``allclose``: the golden-master harness treats a single flipped mantissa
bit as a red suite, so this layer must too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.abr.pensieve import PensieveABR, PensieveConfig
from repro.core.sensei_abr import make_sensei_pensieve
from repro.engine.lockstep import (
    order_supports_lockstep,
    run_rl_rollouts_lockstep,
)
from repro.engine.runner import WorkOrder
from repro.ml.nn import MLP, row_matmul
from repro.ml.rl import ActorCriticAgent, ActorCriticConfig, EpisodeBuffer
from repro.utils.rand import rng_from_seed
from repro.video.chunk import DEFAULT_LADDER
from repro.video.encoder import SyntheticEncoder
from repro.video.video import SourceVideo
from tests.test_golden import _traces


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    return a.shape == b.shape and a.dtype == b.dtype and a.tobytes() == b.tobytes()


# ------------------------------------------------- batched ≡ scalar forward


@st.composite
def matmul_cases(draw):
    """Random (x, w) pairs across widths, dtypes and memory layouts."""
    n = draw(st.integers(0, 7))
    d = draw(st.integers(1, 24))
    h = draw(st.integers(1, 24))
    seed = draw(st.integers(0, 2**31 - 1))
    dtype = draw(st.sampled_from([np.float64, np.float32]))
    rng = rng_from_seed(seed)
    x = rng.standard_normal((n, d)).astype(dtype) * draw(
        st.sampled_from([1.0, 1e-3, 1e6])
    )
    w = rng.standard_normal((d, h)).astype(dtype)
    if draw(st.booleans()):
        # Ragged view: a column/row slice of a larger array, so the input
        # is non-contiguous — batching must not care about strides.
        big = rng.standard_normal((n + 2, 2 * d)).astype(dtype)
        big[1 : n + 1, ::2] = x
        x = big[1 : n + 1, ::2]
    return x, w


class TestBatchedForwardDifferential:
    @given(matmul_cases())
    @settings(max_examples=60, deadline=None)
    def test_row_matmul_is_row_stable(self, case):
        """Row i of the batched product is bitwise the single-row product."""
        x, w = case
        batched = row_matmul(x, w)
        for i in range(x.shape[0]):
            assert _bitwise_equal(batched[i], row_matmul(x[i : i + 1], w)[0])
            assert _bitwise_equal(batched[i], row_matmul(x[i], w))

    @given(
        st.integers(1, 12),            # state_dim
        st.lists(st.integers(1, 24), min_size=1, max_size=3),  # hidden dims
        st.integers(1, 9),             # output dim
        st.integers(0, 6),             # batch size
        st.integers(0, 2**31 - 1),     # seed
    )
    @settings(max_examples=40, deadline=None)
    def test_mlp_forward_batched_equals_scalar(
        self, state_dim, hidden, out_dim, batch, seed
    ):
        """``MLP.forward`` over a batch ≡ per-row forwards, bitwise."""
        mlp = MLP(state_dim, tuple(hidden), out_dim, seed=seed)
        states = rng_from_seed(seed ^ 0x5EED).standard_normal(
            (batch, state_dim)
        )
        stacked, _ = mlp.forward(states)
        assert stacked.shape == (batch, out_dim)
        for i in range(batch):
            row, _ = mlp.forward(states[i])
            assert _bitwise_equal(stacked[i], row)

    @given(
        st.integers(1, 10),            # state_dim
        st.integers(2, 8),             # num_actions
        st.integers(0, 8),             # batch size
        st.integers(0, 2**31 - 1),     # seed
        st.sampled_from([np.float64, np.float32]),
    )
    @settings(max_examples=40, deadline=None)
    def test_action_probabilities_batch_equals_scalar(
        self, state_dim, num_actions, batch, seed, dtype
    ):
        """Batched policy distributions ≡ scalar per row, any dtype input."""
        agent = ActorCriticAgent(ActorCriticConfig(
            state_dim=state_dim, num_actions=num_actions,
            hidden_dims=(16, 8), seed=seed % 1000,
        ))
        states = rng_from_seed(seed).standard_normal(
            (batch, state_dim)
        ).astype(dtype)
        stacked = agent.action_probabilities_batch(states)
        assert stacked.shape == (batch, num_actions)
        for i in range(batch):
            assert _bitwise_equal(
                stacked[i], agent.action_probabilities(np.asarray(states[i], dtype=float))
            )
        # Greedy decisions therefore agree too.
        if batch:
            assert np.array_equal(
                np.argmax(stacked, axis=1),
                [agent.select_action(np.asarray(s, dtype=float), greedy=True)
                 for s in states],
            )

    def test_empty_batch(self):
        agent = ActorCriticAgent(ActorCriticConfig(state_dim=4, num_actions=3))
        probs = agent.action_probabilities_batch(np.zeros((0, 4)))
        assert probs.shape == (0, 3)

    def test_single_row_batch(self):
        agent = ActorCriticAgent(ActorCriticConfig(state_dim=4, num_actions=3))
        state = rng_from_seed(5).standard_normal(4)
        assert _bitwise_equal(
            agent.action_probabilities_batch(state.reshape(1, -1))[0],
            agent.action_probabilities(state),
        )

    def test_rejects_non_matrix(self):
        agent = ActorCriticAgent(ActorCriticConfig(state_dim=4, num_actions=3))
        with pytest.raises(ValueError):
            agent.action_probabilities_batch(np.zeros(4))


# -------------------------------------------- sampling bit-identity fuzz


def _fuzz_encoded():
    source = SourceVideo.synthesize(
        "rlfuzz", "gaming", duration_s=32.0, chunk_duration_s=4.0, seed=97,
    )
    return SyntheticEncoder(seed=98).encode(source, DEFAULT_LADDER)


_ENCODED = _fuzz_encoded()
_TRACES = _traces()


def _random_checkpoint(family: str, checkpoint_seed: int) -> PensieveABR:
    """A policy at a random point in training, pure in ``checkpoint_seed``.

    A few policy-gradient updates on synthetic trajectories walk the
    weights (and both Adam moment estimates) away from initialisation —
    cheaper than real rollouts but exercising exactly the arithmetic a
    real checkpoint carries.
    """
    if family == "pensieve":
        abr = PensieveABR(config=PensieveConfig(seed=checkpoint_seed % 997))
    else:
        abr = make_sensei_pensieve(seed=checkpoint_seed % 997)
    rng = rng_from_seed(checkpoint_seed)
    cfg = abr.agent.config
    for _ in range(int(rng.integers(0, 4))):
        steps = int(rng.integers(2, 9))
        abr.agent.train_on_episode(EpisodeBuffer.from_arrays(
            rng.standard_normal((steps, cfg.state_dim)),
            rng.integers(0, cfg.num_actions, size=steps),
            rng.standard_normal(steps),
        ))
    abr.greedy = False
    return abr


def _orders(abr, exploration_seeds, chunk_weights):
    return [
        WorkOrder(
            abr=abr, encoded=_ENCODED, trace=_TRACES[i % len(_TRACES)],
            chunk_weights=chunk_weights, exploration_seed=int(seed),
        )
        for i, seed in enumerate(exploration_seeds)
    ]


def _result_key(result):
    return (
        result.rendered.levels.tobytes(),
        result.rendered.stalls_s.tobytes(),
        float(result.total_bytes).hex(),
        float(result.session_duration_s).hex(),
    )


def _trajectory_key(trajectory):
    return tuple(
        (state.tobytes(), int(action)) for state, action in trajectory
    )


class TestSamplingBitidentityFuzz:
    @given(
        st.sampled_from(["pensieve", "sensei-pensieve"]),
        st.integers(0, 2**31 - 1),                       # checkpoint seed
        st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=4),
        st.integers(0, 2**31 - 1),                       # shard-split seed
    )
    @settings(max_examples=8, deadline=None)
    def test_lockstep_sampling_replays_serial_streams(
        self, family, checkpoint_seed, exploration_seeds, split_seed
    ):
        """Batched exploration ≡ serial reseed-replay, for any checkpoint,
        seed set and shard split — results *and* trajectories bitwise."""
        note(
            "repro: family=%s checkpoint_seed=%d exploration_seeds=%r "
            "split_seed=%d" % (family, checkpoint_seed, exploration_seeds,
                               split_seed)
        )
        abr = _random_checkpoint(family, checkpoint_seed)
        weights = (
            np.linspace(1.0, 2.0, _ENCODED.num_chunks)
            if family == "sensei-pensieve" else None
        )
        orders = _orders(abr, exploration_seeds, weights)
        assert all(order_supports_lockstep(order) for order in orders)

        # Serial reference: the shared-agent reseed discipline.
        serial = []
        serial_trajectories = []
        for order in orders:
            order.abr.begin_capture()
            serial.append(order.run())
            serial_trajectories.append(order.abr.end_capture())

        # Lockstep over the whole batch...
        results, trajectories = run_rl_rollouts_lockstep(orders)
        # ...and over a random partition: sharding must be invisible.
        rng = rng_from_seed(split_seed)
        split = sorted(
            rng.choice(len(orders), size=int(rng.integers(0, len(orders))),
                       replace=False)
        )
        parts = np.split(np.arange(len(orders)), split)
        split_results, split_trajectories = [], []
        for part in parts:
            if part.size == 0:
                continue
            part_results, part_trajectories = run_rl_rollouts_lockstep(
                [orders[i] for i in part]
            )
            split_results.extend(part_results)
            split_trajectories.extend(part_trajectories)

        for index in range(len(orders)):
            assert _result_key(results[index]) == _result_key(serial[index])
            assert _result_key(split_results[index]) == _result_key(
                serial[index]
            )
            assert _trajectory_key(trajectories[index]) == _trajectory_key(
                serial_trajectories[index]
            )
            assert _trajectory_key(split_trajectories[index]) == (
                _trajectory_key(serial_trajectories[index])
            )

    def test_unseeded_exploration_stays_serial(self):
        """The narrowed gate: exploration without a pinned seed cannot
        batch (no stream to replay), so the lockstep engine must refuse."""
        abr = _random_checkpoint("pensieve", 7)
        order = WorkOrder(abr=abr, encoded=_ENCODED, trace=_TRACES[0])
        assert not order_supports_lockstep(order)
        with pytest.raises(ValueError):
            run_rl_rollouts_lockstep([order])

    def test_greedy_orders_batch_without_seed(self):
        abr = _random_checkpoint("pensieve", 11)
        abr.greedy = True
        order = WorkOrder(abr=abr, encoded=_ENCODED, trace=_TRACES[0])
        assert order_supports_lockstep(order)
