"""Tests for the from-scratch ML substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import DecisionTreeRegressor, RandomForestRegressor
from repro.ml.linreg import LinearRegression, RidgeRegression, fit_nonnegative_weights
from repro.ml.lstm import LSTMCell, LSTMRegressor
from repro.ml.nn import MLP, AdamOptimizer, relu, sigmoid, softmax
from repro.ml.rl import ActorCriticAgent, ActorCriticConfig, EpisodeBuffer


class TestLinearRegression:
    def test_recovers_exact_linear_relation(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 3.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coefficients, [2.0, -1.0, 0.5], atol=1e-8)
        assert model.intercept == pytest.approx(3.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(ValueError):
            LinearRegression().predict(np.zeros((2, 2)))

    def test_ridge_shrinks_towards_zero(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(30, 2))
        y = X @ np.array([5.0, -5.0])
        loose = RidgeRegression(alpha=1e-6).fit(X, y)
        tight = RidgeRegression(alpha=100.0).fit(X, y)
        assert np.linalg.norm(tight.coefficients) < np.linalg.norm(loose.coefficients)

    def test_ridge_prediction_accuracy(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 4))
        y = X @ np.array([1.0, 2.0, 0.0, -1.0]) + 0.01 * rng.normal(size=100)
        model = RidgeRegression(alpha=0.1).fit(X, y)
        assert np.mean((model.predict(X) - y) ** 2) < 0.01

    def test_nonnegative_weights_are_nonnegative(self):
        rng = np.random.default_rng(2)
        X = np.abs(rng.normal(size=(40, 6)))
        y = X @ np.array([1.0, 0.0, 2.0, 0.0, 0.5, 0.0])
        weights = fit_nonnegative_weights(X, y)
        assert np.all(weights >= 0)

    def test_nonnegative_weights_fit_well(self):
        rng = np.random.default_rng(3)
        X = np.abs(rng.normal(size=(60, 4)))
        true_w = np.array([0.5, 1.5, 0.0, 2.0])
        y = X @ true_w
        weights = fit_nonnegative_weights(X, y, ridge_alpha=1e-6)
        assert np.mean((X @ weights - y) ** 2) < 1e-3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearRegression().fit(np.zeros((3, 2)), np.zeros(4))


class TestForest:
    def _dataset(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(-1, 1, size=(n, 3))
        y = np.where(X[:, 0] > 0, 2.0, -2.0) + 0.5 * X[:, 1]
        return X, y

    def test_tree_learns_threshold(self):
        X, y = self._dataset()
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        preds = tree.predict(X)
        assert np.corrcoef(preds, y)[0, 1] > 0.9

    def test_tree_single_row_prediction(self):
        X, y = self._dataset()
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.isfinite(tree.predict(X[0]))

    def test_tree_constant_target(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.full(20, 3.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), 3.0)

    def test_forest_beats_or_matches_single_shallow_tree(self):
        X, y = self._dataset(seed=1)
        X_test, y_test = self._dataset(seed=2)
        tree = DecisionTreeRegressor(max_depth=2, seed=0).fit(X, y)
        forest = RandomForestRegressor(num_trees=15, max_depth=4, seed=0).fit(X, y)
        tree_error = np.mean((tree.predict(X_test) - y_test) ** 2)
        forest_error = np.mean((forest.predict(X_test) - y_test) ** 2)
        assert forest_error <= tree_error + 1e-6

    def test_forest_predict_before_fit_raises(self):
        with pytest.raises(ValueError):
            RandomForestRegressor().predict(np.zeros((1, 3)))

    def test_forest_deterministic_given_seed(self):
        X, y = self._dataset()
        a = RandomForestRegressor(num_trees=5, seed=3).fit(X, y).predict(X[:10])
        b = RandomForestRegressor(num_trees=5, seed=3).fit(X, y).predict(X[:10])
        assert np.allclose(a, b)


class TestNN:
    def test_relu_and_softmax(self):
        assert np.all(relu(np.array([-1.0, 2.0])) == np.array([0.0, 2.0]))
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert np.argmax(probs) == 2

    def test_softmax_stability_large_logits(self):
        probs = softmax(np.array([1000.0, 1001.0]))
        assert np.isfinite(probs).all()

    def test_sigmoid_bounds(self):
        values = sigmoid(np.array([-100.0, 0.0, 100.0]))
        assert values[0] < 1e-6 and values[1] == pytest.approx(0.5) and values[2] > 1 - 1e-6

    def test_mlp_forward_shapes(self):
        mlp = MLP(4, (8,), 3, seed=0)
        out = mlp.predict(np.zeros(4))
        assert out.shape == (3,)
        batch_out = mlp.predict(np.zeros((5, 4)))
        assert batch_out.shape == (5, 3)

    def test_mlp_gradient_matches_numerical(self):
        mlp = MLP(3, (5,), 2, seed=1)
        x = np.array([0.3, -0.2, 0.7])
        target = np.array([1.0, -1.0])

        def loss_fn():
            out = mlp.predict(x)
            return 0.5 * np.sum((out - target) ** 2)

        out, cache = mlp.forward(x)
        grads = mlp.backward(cache, (out - target))
        epsilon = 1e-6
        for name in ("W0", "b1"):
            param = mlp.parameters[name]
            index = (0,) if param.ndim == 1 else (0, 0)
            original = param[index]
            param[index] = original + epsilon
            plus = loss_fn()
            param[index] = original - epsilon
            minus = loss_fn()
            param[index] = original
            numerical = (plus - minus) / (2 * epsilon)
            assert grads[name][index] == pytest.approx(numerical, rel=1e-4, abs=1e-6)

    def test_mlp_trains_on_regression(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(64, 2))
        y = (X[:, :1] * 2 - X[:, 1:]) * 0.5
        mlp = MLP(2, (16,), 1, seed=0)
        optimizer = AdamOptimizer(learning_rate=5e-3)
        first_loss = None
        for _ in range(300):
            out, cache = mlp.forward(X)
            error = out - y
            loss = float(np.mean(error ** 2))
            if first_loss is None:
                first_loss = loss
            grads = mlp.backward(cache, 2 * error / X.shape[0])
            optimizer.update(mlp.parameters, grads)
        assert loss < first_loss * 0.2

    def test_copy_parameters(self):
        a = MLP(3, (4,), 2, seed=0)
        b = MLP(3, (4,), 2, seed=1)
        b.copy_parameters_from(a)
        assert np.allclose(a.predict(np.ones(3)), b.predict(np.ones(3)))


class TestLSTM:
    def test_cell_output_shapes(self):
        cell = LSTMCell(3, 8, seed=0)
        h, c, cache = cell.forward(np.zeros(3), np.zeros(8), np.zeros(8))
        assert h.shape == (8,) and c.shape == (8,)
        assert "concat" in cache

    def test_regressor_learns_sum_signal(self):
        rng = np.random.default_rng(0)
        sequences = [rng.uniform(0, 1, size=(6, 2)) for _ in range(40)]
        targets = np.array([float(seq[:, 0].mean()) for seq in sequences])
        model = LSTMRegressor(input_dim=2, hidden_dim=8, learning_rate=1e-2, seed=0)
        before = np.mean((model.predict(sequences) - targets) ** 2)
        model.fit(sequences, targets, epochs=30)
        after = np.mean((model.predict(sequences) - targets) ** 2)
        assert after < before * 0.5

    def test_regressor_validates_feature_dim(self):
        model = LSTMRegressor(input_dim=3, hidden_dim=4)
        with pytest.raises(ValueError):
            model.predict_sequence(np.zeros((5, 2)))

    def test_fit_validates_alignment(self):
        model = LSTMRegressor(input_dim=2)
        with pytest.raises(ValueError):
            model.fit([np.zeros((3, 2))], np.array([1.0, 2.0]))


class TestActorCritic:
    def _config(self, **kwargs):
        defaults = dict(state_dim=4, num_actions=3, hidden_dims=(16,), seed=0)
        defaults.update(kwargs)
        return ActorCriticConfig(**defaults)

    def test_action_probabilities_sum_to_one(self):
        agent = ActorCriticAgent(self._config())
        probs = agent.action_probabilities(np.zeros(4))
        assert probs.shape == (3,)
        assert probs.sum() == pytest.approx(1.0)

    def test_greedy_action_is_argmax(self):
        agent = ActorCriticAgent(self._config())
        state = np.ones(4)
        probs = agent.action_probabilities(state)
        assert agent.select_action(state, greedy=True) == int(np.argmax(probs))

    def test_episode_buffer_returns(self):
        episode = EpisodeBuffer()
        for reward in (1.0, 1.0, 1.0):
            episode.add(np.zeros(2), 0, reward)
        returns = episode.discounted_returns(0.5)
        assert returns[-1] == pytest.approx(1.0)
        assert returns[0] == pytest.approx(1.0 + 0.5 + 0.25)

    def test_training_on_empty_episode_raises(self):
        agent = ActorCriticAgent(self._config())
        with pytest.raises(ValueError):
            agent.train_on_episode(EpisodeBuffer())

    def test_policy_gradient_reinforces_high_advantage_action(self):
        # Training repeatedly on (state, action=2, high reward) episodes must
        # increase the policy's probability of action 2 in that state.
        config = self._config(actor_learning_rate=2e-2, entropy_weight=0.0)
        agent = ActorCriticAgent(config)
        state = np.ones(4)
        before = agent.action_probabilities(state)[2]
        for _ in range(50):
            episode = EpisodeBuffer()
            episode.add(state, 2, 1.0)
            episode.add(state, 0, 0.0)
            agent.train_on_episode(episode)
        after = agent.action_probabilities(state)[2]
        assert after > before

    def test_training_statistics_keys(self):
        agent = ActorCriticAgent(self._config())
        episode = EpisodeBuffer()
        episode.add(np.zeros(4), 1, 0.5)
        episode.add(np.ones(4), 0, 0.2)
        stats = agent.train_on_episode(episode)
        assert set(stats) == {"mean_return", "policy_loss", "value_loss", "entropy"}
