"""Benchmarks regenerating Table 1 and Figures 1, 3, 4, 5, 20."""

from __future__ import annotations

import pytest

from benchmarks.reporting import print_table
from repro.experiments import sensitivity


@pytest.mark.benchmark(group="table1")
def test_table1_video_set(benchmark, context):
    result = benchmark.pedantic(
        sensitivity.table1_video_set, args=(context,), rounds=1, iterations=1
    )
    print_table("Table 1: test video set", result["rows"])
    assert result["num_videos"] == 16


@pytest.mark.benchmark(group="fig01")
def test_fig01_video_series(benchmark, context):
    result = benchmark.pedantic(
        sensitivity.fig01_video_series_mos, args=(context,),
        kwargs={"clip_chunks": 6}, rounds=1, iterations=1,
    )
    rows = [
        {"position_s": p, "mos": m, "true_qoe": q}
        for p, m, q in zip(result["positions_s"], result["mos"], result["true_qoe"])
    ]
    print_table("Figure 1: MOS vs 1-s rebuffering position (Soccer1 clip)", rows)
    print(f"  max-min MOS gap: {result['max_min_gap']:.1%}")
    # The paper observes a >40% gap on this clip; we require a clear gap.
    assert result["max_min_gap"] > 0.10


@pytest.mark.benchmark(group="fig03")
def test_fig03_qoe_gap_cdf(benchmark, context):
    result = benchmark.pedantic(
        sensitivity.fig03_qoe_gap_cdf, args=(context,), rounds=1, iterations=1
    )
    print_table("Figure 3: max-min QoE gap per video series", [
        {"num_series": result["num_series"],
         "median_gap": result["median_gap"],
         "fraction_above_40pct": result["fraction_above_40pct"]},
    ])
    # The paper: 21 of 48 series exceed a 40% gap; we require a sizeable
    # fraction and substantial median variability.
    assert result["fraction_above_40pct"] >= 0.2
    assert result["median_gap"] > 0.15


@pytest.mark.benchmark(group="fig04")
def test_fig04_incident_positions(benchmark, context):
    result = benchmark.pedantic(
        sensitivity.fig04_incident_positions, args=(context,), rounds=1, iterations=1
    )
    rows = [
        {"incident": name, **{f"chunk{i}": q for i, q in enumerate(curve)}}
        for name, curve in result["curves"].items()
    ]
    print_table("Figure 4: QoE vs incident position", rows)
    # Ranking should be stable across incident types (paper: identical).
    assert result["rank_correlation_1s_vs_4s"] > 0.7


@pytest.mark.benchmark(group="fig05")
def test_fig05_rank_correlation(benchmark, context):
    result = benchmark.pedantic(
        sensitivity.fig05_incident_rank_correlation, args=(context,),
        rounds=1, iterations=1,
    )
    rows = [
        {"video": v, "corr_1s_vs_4s": a, "corr_1s_vs_drop": b}
        for v, a, b in zip(
            result["video_ids"],
            result["rank_correlation_1s_vs_4s"],
            result["rank_correlation_1s_vs_drop"],
        )
    ]
    print_table("Figure 5: QoE rank correlation between incident types", rows)
    assert result["mean_1s_vs_4s"] > 0.6
    assert result["mean_1s_vs_drop"] > 0.3


@pytest.mark.benchmark(group="fig20")
def test_fig20_cv_models(benchmark, context):
    result = benchmark.pedantic(
        sensitivity.fig20_cv_models, args=(context,), rounds=1, iterations=1
    )
    print_table("Figure 20: CV highlight models vs user-study sensitivity", [
        {"model": name, "mean_rank_correlation": value}
        for name, value in result["mean_rank_correlation"].items()
    ])
    # The paper's negative result: CV models do not track true sensitivity.
    for value in result["mean_rank_correlation"].values():
        assert value < 0.8
