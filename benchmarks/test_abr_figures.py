"""Benchmarks regenerating Figures 6, 12a, 12b, 13, 14, 17, 18 and §7.2."""

from __future__ import annotations

import pytest

from benchmarks.reporting import print_table
from repro.experiments import abr_eval


@pytest.mark.benchmark(group="fig06")
def test_fig06_potential_gains(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.fig06_potential_gains, args=(context,),
        kwargs={"video_ids": context.video_ids()[:2],
                "scaling_ratios": (0.3, 0.6, 1.0), "beam_width": 16},
        rounds=1, iterations=1,
    )
    rows = [
        {"throughput_mbps": t, "aware_qoe": a, "unaware_qoe": u, "gain": g}
        for t, a, u, g in zip(
            result["mean_throughputs_mbps"], result["aware_qoe"],
            result["unaware_qoe"], result["relative_gains"],
        )
    ]
    print_table("Figure 6: idealised sensitivity-aware vs -unaware ABR", rows)
    # Paper shape: awareness never hurts and helps somewhere.
    assert min(result["relative_gains"]) > -0.05
    assert max(result["relative_gains"]) > 0.0


@pytest.mark.benchmark(group="fig12a")
def test_fig12a_qoe_gain_cdf(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.fig12a_qoe_gain_cdf, args=(context,), rounds=1, iterations=1
    )
    rows = [
        {"algorithm": name, "median_gain_over_bba": stats["median_gain"],
         "mean_gain_over_bba": stats["mean_gain"]}
        for name, stats in result["per_algorithm"].items()
    ]
    print_table("Figure 12a: QoE gain over BBA", rows)
    per_algo = result["per_algorithm"]
    # Paper shape: both Fugu and SENSEI beat BBA on average (the gains are
    # concentrated on the constrained traces, so the mean is the robust
    # statistic at quick scale); SENSEI at least matches Fugu.
    assert per_algo["Fugu"]["mean_gain"] > 0.0
    assert per_algo["SENSEI"]["mean_gain"] > 0.0
    assert per_algo["SENSEI"]["mean_gain"] >= per_algo["Fugu"]["mean_gain"] - 0.05


@pytest.mark.benchmark(group="fig12b")
def test_fig12b_bandwidth_usage(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.fig12b_bandwidth_usage, args=(context,),
        kwargs={"scaling_ratios": (0.4, 0.6, 0.8, 1.0)}, rounds=1, iterations=1,
    )
    rows = [
        {"bandwidth_scale": ratio,
         **{name: curve[i] for name, curve in result["curves"].items()}}
        for i, ratio in enumerate(result["scaling_ratios"])
    ]
    print_table("Figure 12b: QoE vs normalised bandwidth", rows)
    print(f"  bandwidth saving at equal QoE: {result['bandwidth_saving_at_equal_qoe']:.1%}")
    # More bandwidth never hurts SENSEI.
    sensei = result["curves"]["SENSEI"]
    assert sensei[-1] >= sensei[0] - 0.05


@pytest.mark.benchmark(group="fig13")
def test_fig13_gain_per_video(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.fig13_gain_per_video, args=(context,), rounds=1, iterations=1
    )
    print_table("Figure 13: QoE gain over BBA per video", result["rows"])
    assert len(result["rows"]) == len(context.video_ids())


@pytest.mark.benchmark(group="fig14")
def test_fig14_gain_per_trace(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.fig14_gain_per_trace, args=(context,), rounds=1, iterations=1
    )
    print_table("Figure 14: QoE gain over BBA per trace", result["rows"])
    print(
        "  SENSEI gain on low-throughput traces: "
        f"{result['sensei_gain_low_throughput']:+.1%}, "
        f"high-throughput: {result['sensei_gain_high_throughput']:+.1%}"
    )
    assert len(result["rows"]) == len(context.traces())


@pytest.mark.benchmark(group="headline")
def test_headline_numbers(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.headline_numbers, args=(context,), rounds=1, iterations=1
    )
    print_table("§7.2 headline numbers", [result["mean_qoe"]])
    print(
        f"  SENSEI vs base ABR mean gain: {result['sensei_gain_over_base_mean']:+.1%}; "
        f"SENSEI vs BBA median gain: {result['sensei_gain_over_bba_median']:+.1%}"
    )
    assert result["mean_qoe"]["SENSEI"] >= result["mean_qoe"]["BBA"]
    assert result["sensei_gain_over_base_mean"] >= -0.05


@pytest.mark.benchmark(group="fig17")
def test_fig17_bandwidth_variance(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.fig17_bandwidth_variance, args=(context,),
        kwargs={"noise_levels_mbps": (0.0, 0.4, 0.8)}, rounds=1, iterations=1,
    )
    rows = [
        {"throughput_std_kbps": std,
         **{name: curve[i] for name, curve in result["curves"].items()}}
        for i, std in enumerate(result["throughput_std_kbps"])
    ]
    print_table("Figure 17: QoE under increasing bandwidth variance", rows)
    sensei = result["curves"]["SENSEI-Fugu"]
    fugu = result["curves"]["Fugu"]
    # SENSEI stays within a small margin of (or above) its base ABR at every
    # variance level — the robustness claim of §7.4.
    for s_value, f_value in zip(sensei, fugu):
        assert s_value >= f_value - 0.08


@pytest.mark.benchmark(group="fig18a")
def test_fig18a_base_abr(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.fig18a_base_abr_comparison, args=(context,), rounds=1, iterations=1
    )
    print_table("Figure 18a: gain over BBA by base ABR", [
        {"base": name, **values} for name, values in result.items()
    ])
    # SENSEI's augmentation should not hurt either base algorithm badly.
    assert result["fugu"]["sensei"] >= result["fugu"]["base"] - 0.08


@pytest.mark.benchmark(group="fig18b")
def test_fig18b_gain_breakdown(benchmark, context):
    result = benchmark.pedantic(
        abr_eval.fig18b_gain_breakdown, args=(context,), rounds=1, iterations=1
    )
    print_table("Figure 18b: SENSEI gain breakdown (gain over BBA)", [result])
    # Full SENSEI should not be worse than the bitrate-adaptation-only arm by
    # more than noise, and both arms must stay close to the base ABR or above.
    assert result["full_sensei"] >= result["only_bitrate_adaptation"] - 0.08
    assert result["only_bitrate_adaptation"] >= result["base_abr_with_ksqi"] - 0.08
