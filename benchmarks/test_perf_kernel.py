"""Kernel-only microbenchmark: the planner batch kernel in isolation.

Measures candidates-scored/sec for the three kernel configurations —
``legacy`` (the pre-arena allocating kernel, kept as the differential
reference), ``arena`` float64 (the default; bit-identical to legacy) and
``arena`` float32 (the opt-in fast path) — over the engine's quick-grid
call shapes, and writes a ``kernel`` section into ``BENCH_engine.json``
(read-modify-write: the engine harness's sections are preserved).

The measured shapes mirror what the lockstep coordinator actually sends to
``evaluate_candidates_batch`` on the quick grid: a Fugu-style batch
(12 sessions x 5 throughput scenarios over the 295-candidate max_step=2
tree), an MPC-style batch (single conservative scenario) and a
SENSEI-style weighted batch (sensitivity weights + rebuffer expectation).
Each configuration runs interleaved best-of-rounds so host-load drift hits
every side alike — the same methodology as the engine harness.

Also records arena build-time amortisation (how many kernel calls one
arena build pays for itself in) and the cache-blocked tile sizes
(:func:`repro.abr.planner.kernel_block_sessions`) the coordinator would
use for each shape.

Run via ``make bench-kernel`` or
``PYTHONPATH=src python -m pytest benchmarks/test_perf_kernel.py -v``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict

import numpy as np
import pytest

from repro.abr import planner
from repro.abr.planner import (
    clear_plan_cache,
    enumerate_level_sequences,
    evaluate_candidates_batch,
    kernel_block_sessions,
)
from repro.engine.report import update_bench_section
from repro.qoe.ksqi import KSQIModel

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: The tracked target: arena float64 must score candidates at least this
#: much faster than the pre-arena kernel on the quick-grid call mix.
TARGET_ARENA_SPEEDUP = 2.0

#: Assertion floor at quick scale — below the target (host noise on shared
#: runners), but an arena that stops being meaningfully faster fails loudly.
MIN_ARENA_SPEEDUP = 1.5

#: The ISSUE/ROADMAP acceptance bar recorded in the report.
LADDER_KBPS = np.array([300.0, 750.0, 1850.0, 2850.0, 4300.0])


def _make_inputs(num_sessions: int, num_scenarios: int, *, seed: int,
                 weighted: bool = False, need_rebuffer: bool = False,
                 levels: int = 5, horizon: int = 4,
                 max_step: int = 2) -> Dict[str, object]:
    """Engine-shaped kernel inputs (sorted ladders, masked max_step tree)."""
    rng = np.random.default_rng(seed)
    candidates = enumerate_level_sequences(levels, horizon, max_step=max_step)
    sizes = rng.uniform(2e5, 4e6, size=(num_sessions, horizon, levels))
    sizes.sort(axis=2)
    quality = rng.uniform(20, 95, size=(num_sessions, horizon, levels))
    quality.sort(axis=2)
    if weighted:
        weights = rng.uniform(0.5, 1.5, size=(num_sessions, horizon))
    else:
        weights = np.ones((num_sessions, horizon))
    last_level = rng.integers(-1, levels, size=num_sessions)
    tputs = rng.uniform(0.5, 8.0, size=(num_sessions, num_scenarios))
    probs = rng.uniform(0.1, 1.0, size=(num_sessions, num_scenarios))
    probs /= probs.sum(axis=1, keepdims=True)
    mask = (last_level[:, None] < 0) | (
        np.abs(candidates[None, :, 0] - last_level[:, None]) <= max_step
    )
    return dict(
        candidates=candidates,
        sizes=sizes,
        quality=quality,
        weights=weights,
        buffer_s=rng.uniform(2, 18, size=num_sessions),
        last_level=last_level,
        scenario_tputs=tputs,
        scenario_probs=probs,
        bitrates_kbps=LADDER_KBPS[:levels],
        quality_model=KSQIModel(),
        stall_options_s=(0.0,),
        chunk_duration_s=4.0,
        buffer_capacity_s=30.0,
        candidate_mask=mask,
        need_expected_rebuffer=need_rebuffer,
        weights_uniform=not weighted,
    )


def _shapes(tiny: bool) -> Dict[str, Dict[str, object]]:
    """The quick-grid kernel call mix (smaller batches at tiny scale)."""
    batch = 4 if tiny else 12
    return {
        "fugu_batch": _make_inputs(batch, 5, seed=11),
        "mpc_batch": _make_inputs(batch, 1, seed=13),
        "sensei_batch": _make_inputs(
            batch, 5, seed=17, weighted=True, need_rebuffer=True
        ),
    }


def _candidates_per_call(kwargs: Dict[str, object]) -> int:
    return (
        kwargs["sizes"].shape[0]
        * kwargs["candidates"].shape[0]
        * kwargs["scenario_tputs"].shape[1]
    )


@pytest.mark.benchmark(group="kernel")
def test_kernel_candidates_per_sec(context):
    """Legacy vs arena f64 vs arena f32, interleaved best-of-rounds."""
    tiny = context.scale.name == "tiny"
    rounds = 3 if tiny else 5
    iters = 20 if tiny else 120
    shapes = _shapes(tiny)
    configs = (
        ("legacy", dict(kernel_impl="legacy")),
        ("arena_f64", dict(kernel_impl="arena", kernel_dtype="float64")),
        ("arena_f32", dict(kernel_impl="arena", kernel_dtype="float32")),
    )

    best: Dict[str, Dict[str, float]] = {
        name: {config: float("inf") for config, _ in configs}
        for name in shapes
    }
    for name, kwargs in shapes.items():
        for _, overrides in configs:
            evaluate_candidates_batch(**kwargs, **overrides)  # warm
    for _ in range(rounds):
        for name, kwargs in shapes.items():
            for config, overrides in configs:
                t0 = time.perf_counter()
                for _ in range(iters):
                    evaluate_candidates_batch(**kwargs, **overrides)
                elapsed = (time.perf_counter() - t0) / iters
                best[name][config] = min(best[name][config], elapsed)

    section: Dict[str, object] = {"scale": context.scale.name, "shapes": {}}
    total_time = {config: 0.0 for config, _ in configs}
    total_candidates = 0
    for name, kwargs in shapes.items():
        per_call = _candidates_per_call(kwargs)
        total_candidates += per_call
        entry: Dict[str, float] = {}
        for config, _ in configs:
            elapsed = best[name][config]
            total_time[config] += elapsed
            entry[f"{config}_us"] = round(elapsed * 1e6, 1)
            entry[f"{config}_cands_per_sec"] = round(per_call / elapsed, 0)
        entry["speedup_arena_f64"] = round(
            best[name]["legacy"] / best[name]["arena_f64"], 2
        )
        section["shapes"][name] = entry
        print(
            f"\n{name}: legacy {entry['legacy_us']:.0f}us, "
            f"arena f64 {entry['arena_f64_us']:.0f}us "
            f"({entry['speedup_arena_f64']:.2f}x), "
            f"arena f32 {entry['arena_f32_us']:.0f}us"
        )

    aggregate = {
        f"{config}_cands_per_sec": round(total_candidates / total_time[config])
        for config, _ in configs
    }
    aggregate["speedup_arena_f64"] = round(
        total_time["legacy"] / total_time["arena_f64"], 2
    )
    aggregate["speedup_arena_f32"] = round(
        total_time["legacy"] / total_time["arena_f32"], 2
    )
    aggregate["target_speedup_arena_f64"] = TARGET_ARENA_SPEEDUP
    section["aggregate"] = aggregate

    # Arena build-time amortisation: one cold build vs per-call savings on
    # the dominant shape.
    kwargs = shapes["fugu_batch"]
    clear_plan_cache()
    candidates = enumerate_level_sequences(5, 4, max_step=2)
    t0 = time.perf_counter()
    arena = planner._TreeArena(candidates, LADDER_KBPS)
    build_s = time.perf_counter() - t0
    saved = max(
        best["fugu_batch"]["legacy"] - best["fugu_batch"]["arena_f64"], 1e-9
    )
    section["arena_build"] = {
        "build_ms": round(build_s * 1e3, 3),
        "amortise_calls": int(np.ceil(build_s / saved)),
    }
    assert arena.C == candidates.shape[0]

    # Cache-blocked tile sizes the coordinator would use per shape.
    section["block_sessions"] = {
        "fugu": kernel_block_sessions(5, 4, 2, 5),
        "mpc": kernel_block_sessions(5, 4, 2, 1),
    }
    impl, dtype = planner.kernel_config()
    section["impl_default"] = impl
    section["dtype_default"] = dtype

    update_bench_section("kernel", section, REPORT_PATH)
    print(
        f"\nkernel aggregate: arena f64 "
        f"{aggregate['speedup_arena_f64']:.2f}x legacy "
        f"(f32 {aggregate['speedup_arena_f32']:.2f}x), "
        f"{aggregate['arena_f64_cands_per_sec']:.0f} cands/s; "
        f"build {section['arena_build']['build_ms']:.1f}ms amortised in "
        f"{section['arena_build']['amortise_calls']} calls; wrote kernel "
        f"section to {REPORT_PATH.name}"
    )

    # The default configuration must be the bit-identical one — the f32
    # fast path is opt-in only (CI bench-smoke re-asserts this).
    assert (impl, dtype) == ("arena", "float64")
    if not tiny:
        assert aggregate["speedup_arena_f64"] >= MIN_ARENA_SPEEDUP


@pytest.mark.benchmark(group="kernel")
def test_arena_matches_legacy_on_bench_shapes(context):
    """The measured shapes score bitwise-identically on both kernels."""
    for name, kwargs in _shapes(tiny=True).items():
        legacy = evaluate_candidates_batch(**kwargs, kernel_impl="legacy")
        arena = evaluate_candidates_batch(**kwargs, kernel_impl="arena")
        for field in (
            "best_level", "best_stall_s", "best_score", "expected_rebuffer_s"
        ):
            assert np.array_equal(
                np.asarray(getattr(legacy, field)),
                np.asarray(getattr(arena, field)),
            ), (name, field)
        assert legacy.num_candidates == arena.num_candidates
