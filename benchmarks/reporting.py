"""Reporting helpers shared by the benchmark modules."""

from __future__ import annotations


def print_table(title: str, rows) -> None:
    """Pretty-print a list of dict rows under a title."""
    print(f"\n=== {title} ===")
    for row in rows:
        if isinstance(row, dict):
            cells = "  ".join(
                f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
                for key, value in row.items()
            )
            print(f"  {cells}")
        else:
            print(f"  {row}")
