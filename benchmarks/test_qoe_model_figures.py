"""Benchmarks regenerating Figures 2, 15, 16, 12c and the Appendix B stats."""

from __future__ import annotations

import pytest

from benchmarks.reporting import print_table
from repro.experiments import qoe_models


@pytest.mark.benchmark(group="fig02-fig15")
def test_fig02_fig15_qoe_model_accuracy(benchmark, context):
    result = benchmark.pedantic(
        qoe_models.fig02_fig15_model_accuracy, args=(context,),
        kwargs={"lstm_epochs": 5}, rounds=1, iterations=1,
    )
    rows = list(result["evaluations"].values())
    print_table(
        "Figures 2 & 15: QoE model accuracy "
        "(relative error / discordant pairs / PLCC / SRCC)",
        rows,
    )
    print(
        "  SENSEI error reduction vs best baseline: "
        f"{result['sensei_error_reduction_vs_best_baseline']:+.1%}"
    )
    evaluations = result["evaluations"]
    # Paper shape: SENSEI predicts QoE more accurately than every baseline.
    for baseline in ("KSQI", "LSTM-QoE", "P.1203"):
        assert (
            evaluations["SENSEI"]["mean_relative_error"]
            <= evaluations[baseline]["mean_relative_error"] + 0.03
        )
    assert evaluations["SENSEI"]["plcc"] > 0.6


@pytest.mark.benchmark(group="fig16")
def test_fig16_cost_pruning(benchmark, context):
    result = benchmark.pedantic(
        qoe_models.fig16_cost_pruning_sweeps, args=(context,),
        rounds=1, iterations=1,
    )
    for knob, rows in result["sweeps"].items():
        print_table(f"Figure 16: accuracy vs cost sweep of {knob}", rows)
        # Cost must rise with every knob that adds renderings/raters.
        costs = [row["cost_usd_per_min"] for row in rows]
        assert costs == sorted(costs) or knob == "deviation_threshold"
    # Raising the deviation threshold prunes cost.
    alpha_rows = result["sweeps"]["deviation_threshold"]
    assert alpha_rows[-1]["cost_usd_per_min"] <= alpha_rows[0]["cost_usd_per_min"]


@pytest.mark.benchmark(group="fig12c")
def test_fig12c_cost_vs_qoe(benchmark, context):
    result = benchmark.pedantic(
        qoe_models.fig12c_cost_vs_qoe, args=(context,), rounds=1, iterations=1
    )
    print_table("Figure 12c: crowdsourcing cost vs QoE", [
        {"arm": name, **values} for name, values in result["arms"].items()
    ] + [{"arm": "base ABR (no profiling)", "cost_usd_per_min": 0.0,
          "mean_qoe": result["base_abr_qoe"]}])
    print(f"  pruning saves {result['pruning_cost_saving']:.1%} of the cost")
    # Paper shape: pruning cuts cost by an order of magnitude with only a
    # small QoE penalty.
    assert result["pruning_cost_saving"] > 0.5
    assert result["arms"]["pruned"]["mean_qoe"] >= (
        result["arms"]["exhaustive"]["mean_qoe"] - 0.1
    )


@pytest.mark.benchmark(group="appendix-b")
def test_appendix_b_sanitization(benchmark, context):
    result = benchmark.pedantic(
        qoe_models.appendix_b_rating_sanitization, args=(context,),
        rounds=1, iterations=1,
    )
    print_table("Appendix B/C: rating sanitisation", [
        {"pool": name, **values} for name, values in result.items()
    ])
    assert result["masters_only"]["rejection_rate"] <= (
        result["all_workers"]["rejection_rate"] + 0.05
    )
