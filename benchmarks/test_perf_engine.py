"""Perf harness for the batch simulation engine.

Measures, in one run, the engine's three headline rates and writes them to
``BENCH_engine.json`` at the repo root so the perf trajectory is tracked
from PR to PR:

* **speedup_vs_serial_engine** — the *primary tracked metric*: wall-clock
  of the serial per-session engine versus the lockstep core on the same
  grid, same process, same host.  Both sides are measured in the same run,
  so host-speed drift between benchmark recordings (the PR 4 host ran
  ~1.4x slower than PR 1's) cancels out of the ratio and cannot masquerade
  as a regression — unlike the absolute ``engine_seconds``;
* **grid speedup** — wall-clock of the ``_evaluate_grid`` sweep under the
  seed implementation (reference planner, per-chunk ``np.stack``
  observations, segment-walking trace integration, sequential loop) versus
  the engine (lockstep multi-session core: batched cross-session planner,
  SoA player stepping, memoised candidate trees, precomputed sessions),
  measured back to back in the same process;
* **sessions/sec** — engine-path streaming sessions per second;
* **decisions/sec** — planner decisions per second per ABR family;
* **rl_grid** — the same same-host serial-vs-lockstep ratio for
  Pensieve-family cells (greedy and seeded-exploration), which exercise
  the batched RL driver instead of the planner kernel.

Run via ``make bench`` or
``PYTHONPATH=src python -m pytest benchmarks/test_perf_engine.py -v``.
``REPRO_BENCH_SCALE=tiny`` shrinks the grid to smoke-test scale (used by
the CI ``bench-smoke`` job, which asserts the report schema rather than any
speedup threshold).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.abr.fugu import FuguABR
from repro.abr.mpc import ModelPredictiveABR
from repro.abr.planner import clear_plan_cache
from repro.core.sensei_abr import SenseiFuguABR
from repro.engine import BatchRunner, BenchReport, write_bench_report
from repro.engine.report import phases_from_snapshot, utc_now_iso
from repro.experiments.abr_eval import _evaluate_grid
from repro.obs import MetricsRegistry, set_enabled, use_registry
from repro.player.simulator import simulate_session

#: Written at the repo root; tracked in version control as the perf record.
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: The tracked perf target, recorded in the report: the lockstep engine
#: should keep the quick-scale grid at least this much faster than the seed
#: path (PR 1's per-session engine reached 4.28x).
TARGET_GRID_SPEEDUP = 10.0

#: The hard assertion floor.  Deliberately far below the target so that
#: scheduler noise on a loaded or throttled CI host cannot turn a ~10x
#: measurement into a red suite; an engine that stops being meaningfully
#: faster than the seed path still fails loudly, and the real ratio is
#: recorded in BENCH_engine.json every run.
MIN_GRID_SPEEDUP = 2.0

#: Floor for the primary metric: lockstep must stay at least this much
#: faster than the serial per-session engine *on the same host in the same
#: run* (PR 5 records ~3x; PR 4's same-host figure was ~2.75x).  Same
#: noise rationale as MIN_GRID_SPEEDUP — a floor, not the target.
MIN_SPEEDUP_VS_SERIAL_ENGINE = 2.0

#: Floor for the RL grid: the batched RL driver (one stacked actor forward
#: per decision round across all co-scheduled sessions) must keep
#: Pensieve-family cells at least this much faster than the serial
#: per-session engine in the same run (~4.7x on the recording host).
MIN_RL_SPEEDUP_VS_SERIAL_ENGINE = 2.0

#: Timed measurement attempts per side (best-of): the quick grid runs in
#: well under a second, so single samples are at the mercy of host noise.
#: Five attempts keep the primary same-host ratio steady to a few percent.
MEASUREMENT_ATTEMPTS = 5

#: Telemetry overhead budget: the grid with span tracing enabled must stay
#: within this multiplicative factor of the telemetry-off wall clock...
MAX_TELEMETRY_OVERHEAD = 1.02

#: ...plus this absolute epsilon: the quick grid finishes in ~0.15s, where
#: 2% is a few milliseconds — below timer/scheduler noise even for a
#: best-of-5 — so a pure ratio assertion would flake on healthy code.
TELEMETRY_NOISE_FLOOR_S = 0.02


def _seed_grid(context) -> Dict[str, Dict[Tuple[str, str], float]]:
    """The seed ``_evaluate_grid``: sequential loop over seed-path sessions.

    Reference planner (``use_fast_planner=False``), seed observation
    building (``use_precompute=False``) and the segment-walking trace
    integrator — the implementation the engine replaced, kept callable
    behind flags precisely so this comparison stays honest.
    """
    algorithms = {
        "BBA": (context.make_bba(), False),
        "Fugu": (FuguABR(use_fast_planner=False), False),
        "SENSEI": (SenseiFuguABR(use_fast_planner=False), True),
    }
    scores: Dict[str, Dict[Tuple[str, str], float]] = {
        name: {} for name in algorithms
    }
    for encoded in context.videos():
        video_id = encoded.source.video_id
        for trace in context.traces():
            for name, (abr, use_weights) in algorithms.items():
                weights = context.weights(video_id) if use_weights else None
                result = simulate_session(
                    abr, encoded, trace,
                    chunk_weights=weights, use_precompute=False,
                )
                scores[name][(video_id, trace.name)] = context.oracle.true_qoe(
                    result.rendered
                )
    return scores


@pytest.fixture(scope="module")
def bench_report():
    """Accumulates measurements; written to disk after the module runs."""
    report = BenchReport()
    report.meta["started_at"] = utc_now_iso()
    t0 = time.perf_counter()
    yield report
    report.meta["duration_s"] = round(time.perf_counter() - t0, 3)
    path = write_bench_report(report, REPORT_PATH)
    print(f"\nwrote {path}")


@pytest.mark.benchmark(group="engine")
@pytest.mark.slow
def test_grid_speedup_vs_seed(context, bench_report):
    """Grid sweep: lockstep engine vs seed path, target >= 10x (floor 2x)."""
    context.weights_by_video()  # profile videos outside the timed region

    # Best-of-N per side: one grid is ~seconds, so scheduler noise on a
    # loaded host can move a single sample by tens of percent.
    seed_seconds = float("inf")
    seed_scores = None
    for _ in range(MEASUREMENT_ATTEMPTS):
        clear_plan_cache()  # the baseline must not ride on a warm engine cache
        t0 = time.perf_counter()
        seed_scores = _seed_grid(context)
        seed_seconds = min(seed_seconds, time.perf_counter() - t0)

    # Engine and telemetry attempts interleave (off, on, off, on, …): the
    # ≤2% overhead budget compares the two, and sequential best-of-N blocks
    # would let host load drift between the blocks masquerade as tracing
    # overhead.  Interleaved, any drift hits both sides alike.  The
    # telemetry attempts trace into a fresh registry and also produce the
    # span-derived phase breakdown recorded in the report (not hand-timed).
    runner = BatchRunner.auto()
    metrics = MetricsRegistry()
    engine_seconds = float("inf")
    engine_scores = None
    telemetry_seconds = float("inf")
    telemetry_scores = None
    for _ in range(MEASUREMENT_ATTEMPTS):
        t0 = time.perf_counter()
        engine_scores = _evaluate_grid(context, runner=runner)
        engine_seconds = min(engine_seconds, time.perf_counter() - t0)

        previous_telemetry = set_enabled(True)
        try:
            with use_registry(metrics):
                t0 = time.perf_counter()
                telemetry_scores = _evaluate_grid(context, runner=runner)
                telemetry_seconds = min(
                    telemetry_seconds, time.perf_counter() - t0
                )
        finally:
            set_enabled(previous_telemetry)
    snapshot = metrics.snapshot()

    # Context for the trajectory: the PR 1 engine (fast planner, serial
    # per-session loop) on the same grid, same process, same host.
    serial_runner = BatchRunner(backend="serial")
    serial_engine_seconds = float("inf")
    for _ in range(MEASUREMENT_ATTEMPTS):
        t0 = time.perf_counter()
        _evaluate_grid(context, runner=serial_runner)
        serial_engine_seconds = min(
            serial_engine_seconds, time.perf_counter() - t0
        )

    speedup = seed_seconds / engine_seconds
    speedup_vs_serial = serial_engine_seconds / engine_seconds
    speedup_vs_serial_telemetry = serial_engine_seconds / telemetry_seconds
    telemetry_overhead = telemetry_seconds / engine_seconds
    cells = sum(len(v) for v in engine_scores.values())
    bench_report.grid = {
        "scale": context.scale.name,
        "cells": cells,
        "backend": runner.backend,
        # The primary tracked metric is the same-host, same-run ratio:
        # absolute seconds drift with the recording host, the ratio does
        # not (see the module docstring).
        "primary_metric": "speedup_vs_serial_engine",
        "speedup_vs_serial_engine": round(speedup_vs_serial, 2),
        "seed_seconds": round(seed_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "serial_engine_seconds": round(serial_engine_seconds, 4),
        "speedup": round(speedup, 2),
        "target_speedup": TARGET_GRID_SPEEDUP,
    }
    # Span-derived phase split: totals accumulate over the telemetry
    # attempts, so the shares (not the absolute seconds) are the tracked
    # numbers.  Produced by the tracer — the report never hand-times
    # kernel vs stepping.
    bench_report.phases = {
        **phases_from_snapshot(snapshot),
        "telemetry_attempts": MEASUREMENT_ATTEMPTS,
        "telemetry_seconds": round(telemetry_seconds, 4),
        "telemetry_overhead_vs_engine": round(telemetry_overhead, 4),
        "speedup_vs_serial_engine_telemetry": round(
            speedup_vs_serial_telemetry, 2
        ),
    }
    # plan_cache numbers come off the same registry snapshot everything
    # else reads (the planner publishes them via a snapshot collector) —
    # not from lru_cache introspection at report time.
    gauges = snapshot["gauges"]
    bench_report.plan_cache = {
        "hits": int(gauges.get("plan_cache.hits", 0)),
        "misses": int(gauges.get("plan_cache.misses", 0)),
        "currsize": int(gauges.get("plan_cache.currsize", 0)),
    }
    # Recovery accounting for the measured runners: all-zero on a healthy
    # run; a bench number produced through retries/rebuilds is flagged so
    # a regression hunt never chases wall-clock a crash recovery ate.
    bench_report.fault_log = BatchRunner.merge_fault_logs(
        runner, serial_runner
    )
    print(
        f"\ngrid: serial engine {serial_engine_seconds:.2f}s -> lockstep "
        f"{engine_seconds:.2f}s ({speedup_vs_serial:.2f}x same-host, primary); "
        f"seed {seed_seconds:.2f}s ({speedup:.1f}x, {cells} cells, "
        f"backend={runner.backend}, telemetry {telemetry_seconds:.2f}s "
        f"({telemetry_overhead:.3f}x), plan cache "
        f"{bench_report.plan_cache['hits']} hits / "
        f"{bench_report.plan_cache['misses']} misses)"
    )

    # The engine must reproduce the seed grid, not merely outrun it — with
    # and without telemetry (tracing must never perturb results).
    for name, cells_map in seed_scores.items():
        for key, value in cells_map.items():
            assert engine_scores[name][key] == pytest.approx(value, abs=1e-6)
            assert telemetry_scores[name][key] == engine_scores[name][key]

    # The tracer actually saw the run: a dispatch span per run_orders call
    # and non-zero kernel/stepping leaves.
    phases = bench_report.phases
    assert phases["dispatch_s"] > 0.0
    assert phases["planner_kernel_s"] > 0.0
    assert phases["stepping_s"] > 0.0
    if runner.backend == "lockstep":
        # Disjoint leaves cannot exceed their parent on a single-process
        # backend.  (On the process backend worker spans accumulate in
        # parallel wall clocks, so the sum may legitimately exceed it.)
        assert (
            phases["planner_kernel_s"] + phases["stepping_s"]
            <= phases["dispatch_s"] * 1.001
        )

    # Smoke-scale runs (REPRO_BENCH_SCALE=tiny in CI) record the numbers
    # without enforcing a speedup: sub-100ms timings on shared runners are
    # noise, and the smoke job's purpose is schema + equivalence.
    if context.scale.name != "tiny":
        assert speedup >= MIN_GRID_SPEEDUP
        assert speedup_vs_serial >= MIN_SPEEDUP_VS_SERIAL_ENGINE
        # The primary floor holds with telemetry enabled too...
        assert speedup_vs_serial_telemetry >= MIN_SPEEDUP_VS_SERIAL_ENGINE
        # ...because enabled tracing stays within its overhead budget.
        assert telemetry_seconds <= (
            engine_seconds * MAX_TELEMETRY_OVERHEAD + TELEMETRY_NOISE_FLOOR_S
        )


@pytest.mark.benchmark(group="engine")
@pytest.mark.slow
def test_rl_grid_speedup_vs_serial_engine(context, bench_report):
    """RL grid: the batched RL driver vs the serial per-session engine.

    Pensieve-family cells in both modes the lockstep core batches — greedy
    (stacked forward + argmax) and seeded exploration (per-session RNG
    streams) — over the full video x trace grid.  Results must stay
    bitwise identical across backends; the same-host ratio is recorded as
    ``rl_grid.speedup_vs_serial_engine`` with a >= 2x floor (target well
    above — the recording host measures ~4.7x).
    """
    import numpy as np

    from repro.abr.pensieve import PensieveABR, PensieveConfig
    from repro.core.sensei_abr import make_sensei_pensieve
    from repro.engine.runner import WorkOrder

    sensei_explorer = make_sensei_pensieve(seed=23)
    sensei_explorer.greedy = False
    policies = [
        ("Pensieve/greedy", PensieveABR(config=PensieveConfig(seed=21)),
         False, False),
        ("SENSEI-Pensieve/greedy", make_sensei_pensieve(seed=23),
         True, False),
        ("Pensieve/explore", PensieveABR(config=PensieveConfig(seed=21),
                                         greedy=False), False, True),
        ("SENSEI-Pensieve/explore", sensei_explorer, True, True),
    ]
    orders = []
    for which, (_, abr, use_weights, explore) in enumerate(policies):
        for v, encoded in enumerate(context.videos()):
            weights = (
                context.weights(encoded.source.video_id)
                if use_weights else None
            )
            for t, trace in enumerate(context.traces()):
                orders.append(WorkOrder(
                    abr=abr, encoded=encoded, trace=trace,
                    chunk_weights=weights,
                    exploration_seed=(
                        1000 + which * 100 + v * 10 + t if explore else None
                    ),
                ))

    serial_runner = BatchRunner(backend="serial")
    lockstep_runner = BatchRunner(backend="lockstep")
    serial_results = serial_runner.run_orders(orders)   # warm + reference
    lockstep_results = lockstep_runner.run_orders(orders)
    for left, right in zip(serial_results, lockstep_results):
        assert np.array_equal(left.rendered.levels, right.rendered.levels)
        assert np.array_equal(
            left.rendered.stalls_s, right.rendered.stalls_s
        )
        assert left.session_duration_s == right.session_duration_s

    serial_seconds = float("inf")
    engine_seconds = float("inf")
    for _ in range(MEASUREMENT_ATTEMPTS):
        t0 = time.perf_counter()
        serial_runner.run_orders(orders)
        serial_seconds = min(serial_seconds, time.perf_counter() - t0)
        t0 = time.perf_counter()
        lockstep_runner.run_orders(orders)
        engine_seconds = min(engine_seconds, time.perf_counter() - t0)

    speedup = serial_seconds / engine_seconds
    bench_report.rl_grid = {
        "scale": context.scale.name,
        "cells": len(orders),
        "families": sorted({name for name, *_ in policies}),
        "primary_metric": "speedup_vs_serial_engine",
        "speedup_vs_serial_engine": round(speedup, 2),
        "serial_engine_seconds": round(serial_seconds, 4),
        "engine_seconds": round(engine_seconds, 4),
        "min_speedup": MIN_RL_SPEEDUP_VS_SERIAL_ENGINE,
    }
    print(
        f"\nrl grid: serial engine {serial_seconds:.3f}s -> batched RL "
        f"driver {engine_seconds:.3f}s ({speedup:.2f}x same-host, "
        f"{len(orders)} cells)"
    )
    if context.scale.name != "tiny":
        assert speedup >= MIN_RL_SPEEDUP_VS_SERIAL_ENGINE


@pytest.mark.benchmark(group="engine")
def test_lockstep_matches_serial_on_one_cell(context, bench_report):
    """One grid cell, lockstep vs serial, bitwise — the bench-smoke anchor."""
    import numpy as np

    from repro.engine.runner import WorkOrder

    encoded = context.videos()[0]
    trace = context.traces()[0]
    orders = [
        WorkOrder(abr=SenseiFuguABR(), encoded=encoded, trace=trace,
                  chunk_weights=context.weights(encoded.source.video_id))
    ]
    serial = BatchRunner(backend="serial").run_orders(orders)[0]
    lockstep = BatchRunner(backend="lockstep").run_orders(orders)[0]
    assert np.array_equal(serial.rendered.levels, lockstep.rendered.levels)
    assert np.array_equal(serial.rendered.stalls_s, lockstep.rendered.stalls_s)
    assert serial.session_duration_s == lockstep.session_duration_s


@pytest.mark.benchmark(group="engine")
def test_sessions_per_sec(context, bench_report):
    """Throughput of single engine-path sessions (no pool overhead)."""
    encoded = context.videos()[0]
    traces = context.traces()
    abr = FuguABR()
    simulate_session(abr, encoded, traces[0])  # warm caches
    count = 0
    t0 = time.perf_counter()
    while count < 24:
        simulate_session(abr, encoded, traces[count % len(traces)])
        count += 1
    elapsed = time.perf_counter() - t0
    bench_report.sessions_per_sec = round(count / elapsed, 2)
    print(f"\nsessions/sec: {count / elapsed:.1f}")
    assert count / elapsed > 0


@pytest.mark.benchmark(group="engine")
def test_decisions_per_sec(context, bench_report):
    """Planner decision rate per ABR family on a steady observation."""
    encoded = context.videos()[0]
    trace = context.traces()[0]
    weights = context.weights(encoded.source.video_id)
    rates: Dict[str, float] = {}
    for abr in (ModelPredictiveABR(), FuguABR(), SenseiFuguABR()):
        # Capture a mid-session observation to measure decide() alone.
        captured = {}
        original_decide = abr.decide

        def capturing_decide(observation, _orig=original_decide):
            captured.setdefault("obs", observation)
            return _orig(observation)

        abr.decide = capturing_decide
        simulate_session(abr, encoded, trace, chunk_weights=weights)
        abr.decide = original_decide

        observation = captured["obs"]
        iterations = 200
        # reset() inside the loop keeps every iteration on the same code
        # path (cold-start predictor distribution, fresh stall budget) so
        # the tracked rate cannot drift as internal ABR state accumulates.
        t0 = time.perf_counter()
        for _ in range(iterations):
            abr.reset()
            abr.decide(observation)
        elapsed = time.perf_counter() - t0
        rates[abr.name] = round(iterations / elapsed, 1)
    bench_report.decisions_per_sec = rates
    print("\ndecisions/sec: " + ", ".join(f"{k}={v:.0f}" for k, v in rates.items()))
    assert all(rate > 0 for rate in rates.values())
