"""Perf harness for the RL training subsystem.

Measures experience-collection throughput — episodes/sec and decisions/sec
through the rollout collector — on the serial and process backends, and
writes the numbers to ``BENCH_training.json`` at the repo root so the
training-throughput trajectory is tracked from PR to PR (the companion of
``BENCH_engine.json`` for the simulation engine).

Run via ``make bench-training`` or
``PYTHONPATH=src python -m pytest benchmarks/test_perf_training.py -v``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.core.sensei_abr import make_sensei_pensieve
from repro.engine.runner import BatchRunner
from repro.network.bank import TraceBank
from repro.qoe.ground_truth import GroundTruthOracle
from repro.training import CurriculumConfig, RolloutCollector, ScenarioCurriculum
from repro.video.library import VideoLibrary

#: Written at the repo root; tracked in version control as the perf record.
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_training.json"

#: Episodes measured per backend.
EPISODES = 24


@pytest.fixture(scope="module")
def training_setup():
    """A curriculum over two library videos and a small trace bank."""
    library = VideoLibrary(seed=7)
    videos = [library.encoded("soccer1"), library.encoded("fps1")]
    oracle = GroundTruthOracle()
    weights = {
        video.source.video_id: oracle.normalized_sensitivity(video.source)
        for video in videos
    }
    curriculum = ScenarioCurriculum(
        videos,
        TraceBank(num_traces=4, duration_s=600.0, seed=11).traces(),
        weights_by_video=weights,
        config=CurriculumConfig(trace_duration_s=600.0, seed=29),
    )
    return curriculum, make_sensei_pensieve(seed=47)


@pytest.mark.benchmark(group="training")
@pytest.mark.slow
def test_collection_throughput_serial_vs_process(training_setup):
    """Episodes/sec through the collector, per backend, -> BENCH_training.json."""
    curriculum, abr = training_setup
    specs = curriculum.training_specs(EPISODES, round_index=0)

    backends = {
        "serial": BatchRunner(backend="serial"),
        "process": BatchRunner(
            backend="process", max_workers=os.cpu_count(), chunksize=1
        ),
    }
    rates = {}
    decisions = {}
    reference = None
    for name, runner in backends.items():
        collector = RolloutCollector(runner=runner, shard_size=4)
        # Warms the session precompute / plan caches.  The process pool is
        # NOT warmable: map_ordered spins up a fresh executor per call, so
        # the timed number below includes pool spawn — the cost every
        # training round actually pays.
        collector.collect(abr, specs[:2])
        t0 = time.perf_counter()
        rollouts = collector.collect(abr, specs)
        elapsed = time.perf_counter() - t0
        steps = sum(rollout.num_steps for rollout in rollouts)
        rates[name] = round(len(rollouts) / elapsed, 2)
        decisions[name] = round(steps / elapsed, 1)
        print(
            f"\n{name}: {len(rollouts)} episodes in {elapsed:.2f}s "
            f"({rates[name]:.1f} episodes/s, {decisions[name]:.0f} decisions/s)"
        )
        # Whatever the backend, the experience must be identical.
        actions = [rollout.actions.tolist() for rollout in rollouts]
        if reference is None:
            reference = actions
        else:
            assert actions == reference

    payload = {
        "episodes": EPISODES,
        "episodes_per_sec": rates,
        "decisions_per_sec": decisions,
        "process_speedup": round(rates["process"] / rates["serial"], 2),
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {REPORT_PATH}")
    assert all(rate > 0 for rate in rates.values())
