"""Perf harness for the RL training subsystem.

Measures experience-collection throughput — episodes/sec and decisions/sec
through the rollout collector — on the serial backend and on the parallel
backend :meth:`BatchRunner.auto` selects for this host, and writes the
numbers to ``BENCH_training.json`` at the repo root so the
training-throughput trajectory is tracked from PR to PR (the companion of
``BENCH_engine.json`` for the simulation engine).

On a multi-core host the parallel backend is a process pool with a
*persistent* worker pool (spawned once, reused across collection rounds)
and ``process_speedup`` records the pool's gain over serial collection.  A
single-core host cannot gain from a pool at all — the previous harness
recorded that as an apparent 0.73x regression — so there the runner falls
back to in-process execution and the report says so explicitly
(``parallel_backend_effective``) instead of reporting a slowdown.

The ``lockstep_collection`` section tracks the in-process alternative
that *does* gain on any host: routing collection through the lockstep
engine's batched RL driver (one stacked actor forward per decision round
across the whole round's episodes, per-spec exploration seeds).  Its
``speedup_vs_serial`` is a same-run ratio over byte-identical experience.

Run via ``make bench-training`` or
``PYTHONPATH=src python -m pytest benchmarks/test_perf_training.py -v``.
``REPRO_BENCH_SCALE=tiny`` shrinks the measured episode count (used by
the CI ``bench-smoke`` job, which asserts the report schema rather than
any speedup threshold).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.sensei_abr import make_sensei_pensieve
from repro.engine.report import environment_fingerprint, git_revision
from repro.engine.runner import BatchRunner
from repro.network.bank import TraceBank
from repro.qoe.ground_truth import GroundTruthOracle
from repro.training import CurriculumConfig, RolloutCollector, ScenarioCurriculum
from repro.video.library import VideoLibrary

#: Written at the repo root; tracked in version control as the perf record.
REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_training.json"

#: Smoke scale (CI): schema and backend-equivalence only, tiny timings.
TINY = os.environ.get("REPRO_BENCH_SCALE", "quick") == "tiny"

#: Episodes measured per backend.
EPISODES = 8 if TINY else 24

#: Measurement attempts per backend (best-of, against host noise).
MEASUREMENT_ATTEMPTS = 2

#: Floor for the lockstep-collection speedup on real (non-tiny) runs: the
#: batched RL driver should beat per-episode serial collection clearly
#: (the recording host measures ~3x); the floor sits far below so host
#: noise cannot redden a healthy run.
MIN_LOCKSTEP_COLLECTION_SPEEDUP = 1.3


@pytest.fixture(scope="module")
def training_setup():
    """A curriculum over two library videos and a small trace bank."""
    library = VideoLibrary(seed=7)
    videos = [library.encoded("soccer1"), library.encoded("fps1")]
    oracle = GroundTruthOracle()
    weights = {
        video.source.video_id: oracle.normalized_sensitivity(video.source)
        for video in videos
    }
    curriculum = ScenarioCurriculum(
        videos,
        TraceBank(num_traces=4, duration_s=600.0, seed=11).traces(),
        weights_by_video=weights,
        config=CurriculumConfig(trace_duration_s=600.0, seed=29),
    )
    return curriculum, make_sensei_pensieve(seed=47)


@pytest.mark.benchmark(group="training")
@pytest.mark.slow
def test_collection_throughput_serial_vs_parallel(training_setup):
    """Episodes/sec through the collector, per backend, -> BENCH_training.json."""
    curriculum, abr = training_setup
    specs = curriculum.training_specs(EPISODES, round_index=0)
    cores = os.cpu_count() or 1

    parallel = BatchRunner.auto()
    if parallel.backend == "process":
        # Persistent workers: training pays pool spawn once per run, not
        # once per collection round.
        parallel = BatchRunner(
            backend="process", max_workers=cores, chunksize=1, persistent=True
        )
    backends = {"serial": BatchRunner(backend="serial"), "process": parallel}

    rates = {}
    decisions = {}
    reference = None
    try:
        for name, runner in backends.items():
            collector = RolloutCollector(runner=runner, shard_size=4)
            # Warms the session precompute / plan caches and, for a
            # persistent pool, the worker processes themselves.
            collector.collect(abr, specs[:2])
            best = float("inf")
            rollouts = None
            for _ in range(MEASUREMENT_ATTEMPTS):
                t0 = time.perf_counter()
                rollouts = collector.collect(abr, specs)
                best = min(best, time.perf_counter() - t0)
            steps = sum(rollout.num_steps for rollout in rollouts)
            rates[name] = round(len(rollouts) / best, 2)
            decisions[name] = round(steps / best, 1)
            print(
                f"\n{name} ({runner.backend}): {len(rollouts)} episodes in "
                f"{best:.2f}s ({rates[name]:.1f} episodes/s, "
                f"{decisions[name]:.0f} decisions/s)"
            )
            # Whatever the backend, the experience must be identical.
            actions = [rollout.actions.tolist() for rollout in rollouts]
            if reference is None:
                reference = actions
            else:
                assert actions == reference
    finally:
        parallel.close()

    speedup = round(rates["process"] / rates["serial"], 2)
    effective = (
        "process pool (persistent workers)"
        if parallel.backend == "process"
        else f"{parallel.backend} (single-core fallback: a pool cannot beat "
        "in-process execution on 1 core)"
    )
    if parallel.backend != "process":
        # The auto backend is now the lockstep batched RL driver, whose
        # real gain is measured (and floored) in the dedicated
        # ``lockstep_collection`` section; the legacy process_speedup
        # field stays a pure-noise 1.0 on such hosts.
        speedup = 1.0

    # Lockstep collection: same specs, same snapshot discipline, one
    # in-process batched driver — recorded as its own section with a
    # same-run speedup over serial collection.
    lockstep_runner = BatchRunner(backend="lockstep")
    lockstep_collector = RolloutCollector(runner=lockstep_runner, shard_size=4)
    lockstep_collector.collect(abr, specs[:2])  # warm caches
    lockstep_best = float("inf")
    lockstep_rollouts = None
    for _ in range(MEASUREMENT_ATTEMPTS):
        t0 = time.perf_counter()
        lockstep_rollouts = lockstep_collector.collect(abr, specs)
        lockstep_best = min(lockstep_best, time.perf_counter() - t0)
    lockstep_steps = sum(r.num_steps for r in lockstep_rollouts)
    # Byte-identical experience is the precondition for the speedup to
    # mean anything: same actions, same states, same rewards as serial.
    assert [r.actions.tolist() for r in lockstep_rollouts] == reference
    lockstep_section = {
        "episodes": EPISODES,
        "episodes_per_sec": round(len(lockstep_rollouts) / lockstep_best, 2),
        "decisions_per_sec": round(lockstep_steps / lockstep_best, 1),
        "serial_seconds": round(EPISODES / rates["serial"], 4),
        "lockstep_seconds": round(lockstep_best, 4),
        "speedup_vs_serial": round(
            (EPISODES / rates["serial"]) / lockstep_best, 2
        ),
        "experience_identical": True,
        "min_speedup": MIN_LOCKSTEP_COLLECTION_SPEEDUP,
    }
    print(
        f"\nlockstep collection: {len(lockstep_rollouts)} episodes in "
        f"{lockstep_best:.2f}s "
        f"({lockstep_section['episodes_per_sec']:.1f} episodes/s, "
        f"{lockstep_section['speedup_vs_serial']:.2f}x vs serial)"
    )

    payload = {
        "scale": "tiny" if TINY else "quick",
        "episodes": EPISODES,
        "episodes_per_sec": rates,
        "decisions_per_sec": decisions,
        "process_speedup": speedup,
        "parallel_backend_effective": effective,
        "lockstep_collection": lockstep_section,
        "meta": environment_fingerprint(),
    }
    revision = git_revision()
    if revision is not None:
        payload["meta"]["git_revision"] = revision
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {REPORT_PATH}")
    assert all(rate > 0 for rate in rates.values())
    if not TINY:
        assert (
            lockstep_section["speedup_vs_serial"]
            >= MIN_LOCKSTEP_COLLECTION_SPEEDUP
        )
    if cores > 1:
        # The regression this harness exists to catch: on multi-core hosts
        # the pool must not be meaningfully slower than serial collection.
        # The floor sits below the 1.0 goal (recorded above) so scheduler
        # noise on a loaded host cannot turn a healthy pool into a red
        # suite — the same floor-vs-target split the engine harness uses.
        assert speedup >= 0.9
