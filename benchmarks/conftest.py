"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at ``quick``
scale (see DESIGN.md's per-experiment index) and prints the rows/series it
produces, so the run log doubles as a reproduction report.  Expensive
artefacts (profiles, trained agents) are cached in one session-scoped
context shared across benchmarks.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.registry import context_for
from repro.experiments.spec import ExperimentSpec

# The ``benchmark`` and ``slow`` markers are registered in pytest.ini.


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Experiment context shared by all benchmarks, built from the same
    declarative spec path the CLI uses (only scale/seed matter here; the
    experiment name is per-test).

    ``REPRO_BENCH_SCALE`` overrides the scale (default ``quick``): the CI
    ``bench-smoke`` job runs the whole harness at ``tiny`` scale, where
    only the report schema and the lockstep/serial equivalence matter.
    """
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    return context_for(
        ExperimentSpec(experiment="benchmarks", scale=scale, seed=7)
    )


def print_table(title: str, rows) -> None:
    """Pretty-print a list of dict rows under a title."""
    print(f"\n=== {title} ===")
    for row in rows:
        if isinstance(row, dict):
            cells = "  ".join(
                f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
                for key, value in row.items()
            )
            print(f"  {cells}")
        else:
            print(f"  {row}")
